"""ASCII log-log figure rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.measure.figures import MARKERS, ascii_plot, plot_ratio_sweep


class TestAsciiPlot:
    def test_markers_placed(self):
        out = ascii_plot({"a": [(1, 1), (10, 10), (100, 100)]},
                         width=40, height=10)
        assert out.count("o") >= 3 + 1  # points + legend entry

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot({
            "one": [(1, 1), (100, 1)],
            "two": [(1, 100), (100, 100)],
        }, width=40, height=10)
        assert "o one" in out and "x two" in out
        lines = out.splitlines()
        top_rows = "\n".join(lines[:6])
        bottom_rows = "\n".join(lines[-6:])
        assert "x" in top_rows      # large-y series at the top
        assert "o" in bottom_rows   # small-y series at the bottom

    def test_log_axes_labels(self):
        out = ascii_plot({"a": [(10, 1), (10000, 1000)]},
                         width=40, height=10)
        assert "1e+04" in out or "10000" in out or "1e+4" in out

    def test_linear_axes(self):
        out = ascii_plot({"a": [(0, 0), (5, 10)]}, logx=False, logy=False,
                         width=40, height=10)
        assert "|" in out

    def test_title_and_axis_labels(self):
        out = ascii_plot({"a": [(1, 1), (2, 2)]}, title="T",
                         xlabel="N", ylabel="ratio", width=40, height=10)
        assert out.splitlines()[0] == "T"
        assert "x: N" in out and "y: ratio" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": [(0, 1)]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({})
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": []})

    def test_too_small_plot_area(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({"a": [(1, 1)]}, width=4, height=2)

    def test_constant_series_does_not_crash(self):
        out = ascii_plot({"a": [(1, 5), (10, 5), (100, 5)]},
                         width=40, height=10)
        assert "o" in out


class TestPlotRatioSweep:
    def test_from_experiment_rows(self):
        rows = [[64, 2.0, 5.0], [128, 1.5, 3.0], [256, 1.0, 1.2]]
        out = plot_ratio_sweep(rows, n_col=0,
                               ratio_cols={"read": 1, "write": 2},
                               title="sweep", width=40, height=10)
        assert "o read" in out and "x write" in out

    def test_skips_nonpositive_ratios(self):
        rows = [[64, 0.0], [128, 2.0]]
        out = plot_ratio_sweep(rows, n_col=0, ratio_cols={"r": 1},
                               width=40, height=10)
        assert out  # only the positive point survives


class TestCLIPlot:
    def test_plot_flag(self, capsys):
        from repro.cli import main

        assert main(["fig3", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "(a) single-thread" in out
        assert "measured/expected" in out

    def test_plot_flag_on_unplottable(self, capsys):
        from repro.cli import main

        assert main(["table1", "--plot"]) == 0
        assert "no plottable sweep" in capsys.readouterr().out

    def test_markers_constant(self):
        assert len(set(MARKERS)) == len(MARKERS)
