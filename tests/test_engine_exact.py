"""Exact engine: policy-aware nest execution over the cache simulator."""

import pytest

from repro.engine.exact import ExactEngine
from repro.engine.stream import Access, StreamDecl
from repro.machine.config import CacheConfig
from repro.machine.prefetch import SoftwarePrefetch
from repro.units import MIB


def copy_nest(elements, elem=8, src_base=0, dst_base=None):
    """in -> out sequential copy as (streams, accesses)."""
    if dst_base is None:
        dst_base = elements * elem + 256
    streams = [
        StreamDecl("in", False, elements, elem, elem, elements * elem,
                   base=src_base),
        StreamDecl("out", True, elements, elem, elem, elements * elem,
                   base=dst_base),
    ]

    def accesses():
        for i in range(elements):
            yield Access("in", src_base + i * elem, elem, False)
            yield Access("out", dst_base + i * elem, elem, True)

    return streams, accesses()


@pytest.fixture
def engine():
    return ExactEngine(CacheConfig(capacity_bytes=MIB))


class TestCopyNest:
    def test_bypass_copy_one_read_one_write(self, engine):
        streams, accesses = copy_nest(1024)
        t = engine.run_nest(streams, accesses)
        assert t.read_bytes == 1024 * 8
        assert t.write_bytes == 1024 * 8

    def test_prefetch_forces_second_read(self, engine):
        streams, accesses = copy_nest(1024)
        t = engine.run_nest(streams, accesses,
                            prefetch=SoftwarePrefetch(dcbt=True,
                                                      dcbtst=True))
        assert t.read_bytes == 2 * 1024 * 8
        assert t.write_bytes == 1024 * 8


class TestStridedGather:
    def _nest(self, n_rows, n_cols, elem=16):
        """Read column-major from a row-major array, write sequential."""
        footprint = n_rows * n_cols * elem
        out_base = footprint + 256
        streams = [
            StreamDecl("tmp", False, n_rows * n_cols, elem,
                       n_cols * elem, footprint, base=0),
            StreamDecl("out", True, n_rows * n_cols, elem, elem,
                       footprint, base=out_base),
        ]

        def accesses():
            idx = 0
            for col in range(n_cols):
                for row in range(n_rows):
                    yield Access("tmp", (row * n_cols + col) * elem,
                                 elem, False)
                    yield Access("out", out_base + idx * elem, elem, True)
                    idx += 1

        return streams, accesses()

    def test_cached_gather_two_reads_per_write(self, engine):
        streams, accesses = self._nest(64, 64)
        t = engine.run_nest(streams, accesses)
        nbytes = 64 * 64 * 16
        assert t.read_bytes == 2 * nbytes  # tmp + out RFO
        assert t.write_bytes == nbytes

    def test_thrashing_gather_amplifies_reads(self):
        # Tiny cache: each strided access refetches a whole granule.
        engine = ExactEngine(CacheConfig(capacity_bytes=16 * 1024))
        streams, accesses = self._nest(256, 64)
        t = engine.run_nest(streams, accesses)
        ratio = t.read_bytes / t.write_bytes
        assert ratio > 3.5  # toward the 5x of Eq. 7's regime


class TestEngineLifecycle:
    def test_reset_clears_state(self, engine):
        streams, accesses = copy_nest(128)
        engine.run_nest(streams, accesses)
        engine.reset()
        assert engine.sim.traffic.total_bytes == 0
        assert engine.sim.resident_bytes() == 0

    def test_capacity_override_rounds_to_geometry(self):
        engine = ExactEngine(CacheConfig(capacity_bytes=MIB),
                             capacity_override=100_000)
        cfg = engine.cache_config
        assert cfg.capacity_bytes % (cfg.line_bytes * cfg.associativity) == 0
        assert cfg.capacity_bytes <= 100_000

    def test_traffic_is_delta_per_nest(self, engine):
        streams, accesses = copy_nest(128)
        first = engine.run_nest(streams, accesses)
        streams2, accesses2 = copy_nest(128)
        second = engine.run_nest(streams2, accesses2)
        assert first.total_bytes > 0
        # Second nest re-touches the same addresses: with flush_at_end
        # the cache was drained of dirty data but lines remain...
        # run_nest flushes (invalidating), so traffic repeats.
        assert second.read_bytes == first.read_bytes
