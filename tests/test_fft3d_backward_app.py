"""Instrumented backward/roundtrip FFT pipeline."""

import pytest

from repro.errors import ConfigurationError
from repro.fft3d.app import FFT3DApp
from repro.fft3d.fft import BACKWARD_PHASES, FORWARD_PHASES
from repro.mpi.grid import ProcessorGrid
from repro.noise import QUIET


def make_app(direction, **kw):
    kw.setdefault("n", 128)
    kw.setdefault("grid", ProcessorGrid(2, 4))
    kw.setdefault("seed", 5)
    kw.setdefault("noise", QUIET)
    return FFT3DApp(direction=direction, **kw)


class TestBackwardPipeline:
    def test_phase_mirror_structure(self):
        fwd = [p.kind for p in FORWARD_PHASES]
        bwd = [p.kind for p in BACKWARD_PHASES]
        assert bwd == fwd[::-1]

    def test_backward_resort_signatures(self):
        app = make_app("backward")
        app.run(slices_per_phase=1)
        for phase, expected in (("s1cb", 2.0), ("s1pb", 2.0),
                                ("s2cb", 1.0), ("s2pb", 1.0)):
            recs = app.resort_summary(phase)
            assert len(recs) == 8
            ratio = (sum(r.read_bytes for r in recs)
                     / sum(r.write_bytes for r in recs))
            assert ratio == pytest.approx(expected, rel=0.05), phase

    def test_roundtrip_runs_both_pipelines(self):
        app = make_app("roundtrip")
        names = [p.name for p in app.phases]
        assert names[0] == "fft-z" and names[-1] == "ifft-z"
        assert len(names) == 18
        app.run(slices_per_phase=1)
        # Four all2alls total: both row- and column-wise, twice.
        recv = sum(nic.recv_octets for node in app.cluster.nodes
                   for nic in node.nics)
        fwd_only = make_app("forward")
        fwd_only.run(slices_per_phase=1)
        recv_fwd = sum(nic.recv_octets for node in fwd_only.cluster.nodes
                       for nic in node.nics)
        assert recv == pytest.approx(2 * recv_fwd, rel=0.01)

    def test_invalid_direction(self):
        with pytest.raises(ConfigurationError):
            make_app("sideways")

    def test_backward_gpu_work_equals_forward(self):
        fwd = make_app("forward")
        fwd.run(slices_per_phase=1)
        bwd = make_app("backward")
        bwd.run(slices_per_phase=1)
        g_fwd = fwd.cluster.nodes[0].gpus_on_socket(0)[0].flops_executed
        g_bwd = bwd.cluster.nodes[0].gpus_on_socket(0)[0].flops_executed
        assert g_fwd == pytest.approx(g_bwd)
