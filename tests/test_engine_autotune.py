"""Tests for the self-tuning execution layer (DESIGN.md §6.5).

The adaptive layer — AIMD segment sizing, sorted shard spans, worker
affinity, adaptive poll backoff — is pure control plane: it may change
*when* and *how much* work moves through the pipeline, never *what* is
simulated. The differentials here pin that invariant (autotuned pooled
runs are byte-identical to the monolithic batch engine for every
kernel family), and the unit tests pin the control law itself plus the
env-knob plumbing and its precedence rules.
"""

import json
import os
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.autotune import (
    MIN_SEGMENT_ROWS,
    AdaptiveBackoff,
    AutotuneConfig,
    SegmentSizeController,
    resolve_autotune,
)
from repro.engine.envconfig import (
    AFFINITY_ENV,
    AUTOTUNE_ENV,
    RING_DEPTH_ENV,
    SEGMENT_ROWS_ENV,
    TARGET_OCCUPANCY_ENV,
    affinity_mode,
    default_autotune,
    default_target_occupancy,
    env_flag,
)
from repro.engine.pipeline import PipelinedExactEngine
from repro.errors import SimulationError
from repro.kernels.blas import Dot, Gemm
from repro.kernels.stream import StreamKernel
from tests.test_engine_pipeline import (
    FAMILY_KERNELS,
    SMALL,
    batch_reference,
    pipelined_state,
)

#: Controller config that can actually move inside tiny test segments
#: (the production MIN_SEGMENT_ROWS floor would pin rows to the slot).
TINY = AutotuneConfig(target_occupancy=0.75, min_rows=1)


# ----------------------------------------------------------------------
# AIMD controller law
# ----------------------------------------------------------------------
class TestSegmentSizeController:
    def test_grows_additively_while_starved(self):
        ctrl = SegmentSizeController(800, 100, TINY)
        assert ctrl.rows == 100
        ctrl.observe(0.0, stalled=False)
        assert ctrl.rows == 200  # +slot_rows//8
        ctrl.observe(0.5, stalled=False)
        assert ctrl.rows == 300
        for _ in range(20):
            ctrl.observe(0.0, stalled=False)
        assert ctrl.rows == 800  # clamped to the mmapped slot

    def test_high_occupancy_without_stall_holds_steady(self):
        ctrl = SegmentSizeController(800, 400, TINY)
        for _ in range(5):
            ctrl.observe(1.0, stalled=False)
        assert ctrl.rows == 400  # healthy pipeline: no change

    def test_shrinks_multiplicatively_on_congestion(self):
        ctrl = SegmentSizeController(800, 400, TINY)
        ctrl.observe(1.0, stalled=True)
        assert ctrl.rows == 300  # * 3/4
        ctrl.observe(0.9, stalled=True)
        assert ctrl.rows == 225
        for _ in range(40):
            ctrl.observe(1.0, stalled=True)
        assert ctrl.rows == 1  # floored at min_rows

    def test_stall_below_target_still_grows(self):
        ctrl = SegmentSizeController(800, 400, TINY)
        ctrl.observe(0.5, stalled=True)
        assert ctrl.rows == 500

    def test_initial_rows_clamped_to_bounds(self):
        assert SegmentSizeController(800, 10**9, TINY).rows == 800
        cfg = AutotuneConfig(min_rows=64)
        assert SegmentSizeController(800, 1, cfg).rows == 64
        # min_rows larger than the slot collapses to the slot.
        assert SegmentSizeController(32, 1, cfg).rows == 32

    def test_trace_records_every_decision(self):
        ctrl = SegmentSizeController(800, 100, TINY)
        ctrl.observe(0.125, stalled=False)
        ctrl.observe(1.0, stalled=True)
        assert ctrl.trace == [(1, 200, 0.125), (2, 150, 1.0)]

    def test_validation(self):
        with pytest.raises(SimulationError):
            SegmentSizeController(0, 100, TINY)
        with pytest.raises(SimulationError):
            SegmentSizeController(800, 0, TINY)
        assert MIN_SEGMENT_ROWS == AutotuneConfig().min_rows


class TestAdaptiveBackoff:
    def test_doubles_until_capped_then_resets(self):
        b = AdaptiveBackoff(min_s=0.001, max_s=0.005)
        assert [b.timeout() for _ in range(4)] == pytest.approx(
            [0.001, 0.002, 0.004, 0.005])
        assert b.timeout() == pytest.approx(0.005)
        b.reset()
        assert b.timeout() == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBackoff(min_s=0.0, max_s=1.0)
        with pytest.raises(ValueError):
            AdaptiveBackoff(min_s=0.2, max_s=0.1)


# ----------------------------------------------------------------------
# config + env knobs
# ----------------------------------------------------------------------
class TestAutotuneConfig:
    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, "lots"])
    def test_bad_target_occupancy_rejected(self, bad):
        with pytest.raises(SimulationError, match="target_occupancy"):
            AutotuneConfig(target_occupancy=bad)

    def test_bad_min_rows_rejected(self):
        with pytest.raises(SimulationError, match="min_rows"):
            AutotuneConfig(min_rows=0)

    def test_resolved_target_prefers_explicit(self, monkeypatch):
        monkeypatch.setenv(TARGET_OCCUPANCY_ENV, "0.5")
        assert AutotuneConfig(target_occupancy=0.9).resolved_target() \
            == 0.9
        assert AutotuneConfig().resolved_target() == 0.5
        monkeypatch.delenv(TARGET_OCCUPANCY_ENV)
        assert AutotuneConfig().resolved_target() == 0.75


class TestEnvKnobs:
    def test_defaults_without_env(self, monkeypatch):
        for env in (AUTOTUNE_ENV, TARGET_OCCUPANCY_ENV, AFFINITY_ENV):
            monkeypatch.delenv(env, raising=False)
        assert default_autotune() is False
        assert default_target_occupancy() == 0.75
        assert affinity_mode() == "auto"

    @pytest.mark.parametrize("raw,expect", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_flag_spellings(self, monkeypatch, raw, expect):
        monkeypatch.setenv(AUTOTUNE_ENV, raw)
        assert env_flag(AUTOTUNE_ENV) is expect

    def test_junk_values_fail_at_parse_time(self, monkeypatch):
        monkeypatch.setenv(AUTOTUNE_ENV, "maybe")
        with pytest.raises(SimulationError, match=AUTOTUNE_ENV):
            default_autotune()
        monkeypatch.setenv(TARGET_OCCUPANCY_ENV, "1.5")
        with pytest.raises(SimulationError, match=TARGET_OCCUPANCY_ENV):
            default_target_occupancy()
        monkeypatch.setenv(AFFINITY_ENV, "sometimes")
        with pytest.raises(SimulationError, match=AFFINITY_ENV):
            affinity_mode()

    def test_resolve_autotune_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(AUTOTUNE_ENV, "1")
        assert resolve_autotune(None) is True
        assert resolve_autotune(False) is False
        monkeypatch.setenv(AUTOTUNE_ENV, "0")
        assert resolve_autotune(None) is False
        assert resolve_autotune(True) is True

    def test_engine_picks_up_env_defaults(self, monkeypatch):
        monkeypatch.delenv(AFFINITY_ENV, raising=False)
        monkeypatch.setenv(AUTOTUNE_ENV, "1")
        eng = PipelinedExactEngine(SMALL, n_workers=0)
        assert eng.autotune is True
        assert eng.affinity is True  # auto mode follows autotune
        monkeypatch.setenv(AFFINITY_ENV, "off")
        assert PipelinedExactEngine(SMALL, n_workers=0).affinity is False
        assert PipelinedExactEngine(
            SMALL, n_workers=0, autotune=False).autotune is False

    def test_constructor_args_beat_sizing_env(self, monkeypatch):
        # Knob-precedence regression: explicit constructor arguments
        # always win; the env default applies only when None.
        monkeypatch.setenv(SEGMENT_ROWS_ENV, "777")
        monkeypatch.setenv(RING_DEPTH_ENV, "9")
        eng = PipelinedExactEngine(SMALL, n_workers=0,
                                   segment_rows=55, ring_depth=3)
        assert eng.segment_rows == 55
        assert eng.ring_depth == 3
        dflt = PipelinedExactEngine(SMALL, n_workers=0)
        assert dflt.segment_rows == 777
        assert dflt.ring_depth == 9


# ----------------------------------------------------------------------
# differential: any tuning trajectory is byte-identical
# ----------------------------------------------------------------------
_REFS = {}


def _ref(kernel_i):
    if kernel_i not in _REFS:
        _REFS[kernel_i] = batch_reference(FAMILY_KERNELS[kernel_i])
    return _REFS[kernel_i]


class TestAutotunedDifferential:
    @given(kernel_i=st.integers(0, len(FAMILY_KERNELS) - 1),
           segment_rows=st.integers(32, 2048),
           ring_depth=st.integers(2, 4),
           target=st.sampled_from([0.25, 0.5, 0.75, 1.0]),
           min_rows=st.integers(1, 256))
    @settings(max_examples=12, deadline=None)
    def test_autotuned_pool_matches_batch_engine(
            self, kernel_i, segment_rows, ring_depth, target, min_rows):
        kernel = FAMILY_KERNELS[kernel_i]
        cfg = AutotuneConfig(target_occupancy=target, min_rows=min_rows)
        with PipelinedExactEngine(SMALL, n_workers=2,
                                  segment_rows=segment_rows,
                                  ring_depth=ring_depth,
                                  autotune=True, autotune_config=cfg,
                                  affinity=False) as eng:
            traffic = eng.run_kernel(kernel)
        assert pipelined_state(eng, traffic) == _ref(kernel_i)
        stats = eng.last_pipeline_stats
        assert stats["autotune"] is True
        assert stats["final_segment_rows"] <= segment_rows
        assert len(stats["tuning_trace"]) == stats["segments"]

    def test_autotuned_many_kernels_persistent_pool(self):
        kernels = [Gemm(10), Dot(777), StreamKernel(op="triad", n=500)]
        refs = [batch_reference(k) for k in kernels]
        with PipelinedExactEngine(SMALL, n_workers=2, segment_rows=173,
                                  autotune=True, autotune_config=TINY,
                                  affinity=False) as eng:
            first = eng.run_many(kernels)
            pids = eng.worker_pids()
            converged = eng.last_pipeline_stats["final_segment_rows"]
            second = eng.run_many(kernels)
            assert eng.worker_pids() == pids  # pool persisted
            # The next run seeds from the converged operating point.
            assert eng.last_pipeline_stats["tuning_trace"][0][1] >= 1
        for results in (first, second):
            for traffic, ref in zip(results, refs):
                assert (traffic.read_bytes, traffic.write_bytes) \
                    == ref[:2]
        assert converged >= 1


# ----------------------------------------------------------------------
# checkpoint / resume across tuning-mode changes
# ----------------------------------------------------------------------
class TestCheckpointAcrossTuningModes:
    def test_resume_after_fault_with_tuning_flipped(self, tmp_path):
        """A suite checkpointed mid-run under one tuning mode must
        resume under the other without changing a byte: checkpoints
        are keyed by kernel and cache geometry, never by the control
        plane."""
        kernels = [Gemm(10), Dot(777), StreamKernel(op="triad", n=800)]
        refs = [batch_reference(k) for k in kernels]

        calls = []

        def hook(worker_id):
            calls.append(worker_id)
            if len(calls) == 2:
                raise RuntimeError("injected fault")

        eng = PipelinedExactEngine(SMALL, n_workers=2, segment_rows=173,
                                   autotune=False,
                                   checkpoint_dir=tmp_path / "ckpt")
        eng.after_shard_hook = hook
        with pytest.raises(RuntimeError, match="injected fault"):
            eng.run_many(kernels)

        fresh = PipelinedExactEngine(SMALL, n_workers=2,
                                     segment_rows=347, ring_depth=2,
                                     autotune=True, autotune_config=TINY,
                                     affinity=False,
                                     checkpoint_dir=tmp_path / "ckpt")
        with fresh:
            results = fresh.run_many(kernels)
        assert fresh.kernels_resumed >= 1
        for traffic, ref in zip(results, refs):
            assert (traffic.read_bytes, traffic.write_bytes) == ref[:2]

    def test_autotuned_checkpoint_satisfies_static_rerun(self, tmp_path):
        kernel = Gemm(10)
        ref = batch_reference(kernel)
        with PipelinedExactEngine(SMALL, n_workers=2, segment_rows=173,
                                  autotune=True, autotune_config=TINY,
                                  affinity=False,
                                  checkpoint_dir=tmp_path / "c") as eng:
            eng.run_many([kernel])
        with PipelinedExactEngine(SMALL, n_workers=0,
                                  checkpoint_dir=tmp_path / "c") as eng:
            results = eng.run_many([kernel])
        assert eng.kernels_resumed == 1
        assert (results[0].read_bytes, results[0].write_bytes) == ref[:2]


# ----------------------------------------------------------------------
# lifecycle: leak reporting + stats surface
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_del_reports_leaked_worker_pids(self):
        eng = PipelinedExactEngine(SMALL, n_workers=1, segment_rows=64)
        eng.run_kernel(Dot(300))
        eng.close()
        eng.close = lambda: [4242, 4243]  # simulate a missed join
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            eng.__del__()
        leaks = [w for w in caught
                 if issubclass(w.category, ResourceWarning)]
        assert len(leaks) == 1
        assert "4242" in str(leaks[0].message)
        assert "4243" in str(leaks[0].message)

    def test_del_is_silent_after_clean_close(self):
        eng = PipelinedExactEngine(SMALL, n_workers=1, segment_rows=64)
        eng.run_kernel(Dot(300))
        assert eng.close() == []
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            eng.__del__()
        assert not [w for w in caught
                    if issubclass(w.category, ResourceWarning)]

    def test_stats_surface_static_vs_tuned(self):
        with PipelinedExactEngine(SMALL, n_workers=1, segment_rows=101,
                                  autotune=False) as eng:
            eng.run_kernel(Gemm(10))
            static = eng.last_pipeline_stats
        assert static["autotune"] is False
        assert "final_segment_rows" not in static
        assert static["worker_cpus"] is None
        with PipelinedExactEngine(SMALL, n_workers=1, segment_rows=101,
                                  autotune=True, autotune_config=TINY,
                                  affinity=False) as eng:
            eng.run_kernel(Gemm(10))
            tuned = eng.last_pipeline_stats
        assert tuned["autotune"] is True
        assert tuned["target_occupancy"] == 0.75
        assert 1 <= tuned["final_segment_rows"] <= 101
        assert 0.0 <= tuned["mean_ring_occupancy"] <= 1.0
        assert tuned["tuning_trace"]


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
class TestAutotuneCli:
    def test_pipeline_autotune_json_and_trace(self, capsys, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "tuning.json"
        rc = main(["pipeline", "--kernel", "stream-triad", "--size",
                   "20000", "--workers", "2", "--segment-rows", "4096",
                   "--autotune", "--target-occupancy", "0.5",
                   "--tuning-trace-out", str(trace_path), "--json"])
        captured = capsys.readouterr()
        assert rc == 0
        report = json.loads(captured.out)
        assert report["pipeline"]["autotune"] is True
        assert report["pipeline"]["target_occupancy"] == 0.5
        assert report["pipeline"]["final_segment_rows"] >= 1
        artifact = json.loads(trace_path.read_text())
        assert artifact["autotune"] is True
        assert artifact["target_occupancy"] == 0.5
        assert artifact["final_segment_rows"] \
            == report["pipeline"]["final_segment_rows"]
        assert artifact["trace"]

    def test_pipeline_autotune_human_output(self, capsys):
        from repro.cli import main

        rc = main(["pipeline", "--kernel", "dot", "--size", "4000",
                   "--workers", "1", "--segment-rows", "512",
                   "--autotune"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "autotune: final segment_rows=" in captured.out

    def test_env_autotune_smoke(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv(AUTOTUNE_ENV, "1")
        monkeypatch.setenv(AFFINITY_ENV, "off")
        rc = main(["pipeline", "--kernel", "dot", "--size", "2000",
                   "--workers", "1", "--segment-rows", "512", "--json"])
        captured = capsys.readouterr()
        assert rc == 0
        report = json.loads(captured.out)
        assert report["pipeline"]["autotune"] is True
