"""Replacement policies (LRU vs FIFO) and PAPI_accum semantics."""

import pytest

from repro.errors import PapiInvalidArgument, SimulationError
from repro.machine.cache import CacheSim
from repro.machine.config import CacheConfig


def cache(policy, capacity=1024, assoc=2, line=128):
    return CacheSim(CacheConfig(capacity_bytes=capacity, line_bytes=line,
                                granule_bytes=64, associativity=assoc),
                    policy=policy)


class TestReplacementPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(SimulationError):
            cache("random")

    def test_lru_retains_re_touched_line(self):
        c = cache("lru")  # 4 sets x 2 ways
        stride = 4 * 128  # same-set stride
        a, b, d = 0, stride, 2 * stride
        c.access(a, 8, False)
        c.access(b, 8, False)
        c.access(a, 8, False)   # refresh a
        c.access(d, 8, False)   # evicts b under LRU
        c.access(a, 8, False)   # hit
        assert c.traffic.read_bytes == 3 * 64

    def test_fifo_evicts_oldest_despite_re_touch(self):
        c = cache("fifo")
        stride = 4 * 128
        a, b, d = 0, stride, 2 * stride
        c.access(a, 8, False)
        c.access(b, 8, False)
        c.access(a, 8, False)   # does NOT refresh under FIFO
        c.access(d, 8, False)   # evicts a (oldest insertion)
        c.access(a, 8, False)   # miss again
        assert c.traffic.read_bytes == 4 * 64

    def test_policies_agree_on_streaming(self):
        # No reuse -> replacement policy is irrelevant.
        for policy in CacheSim.POLICIES:
            c = cache(policy, capacity=2048)
            c.touch_array(0, 1024, 8, 8, is_write=False)
            assert c.traffic.read_bytes == 1024 * 8

    def test_lru_never_worse_on_lru_friendly_pattern(self):
        # Cyclic reuse within capacity: LRU keeps everything, FIFO too.
        for policy in ("lru", "fifo"):
            c = cache(policy, capacity=4096, assoc=4)
            for _ in range(5):
                c.touch_array(0, 32, 8, 64, is_write=False)
            assert c.traffic.read_bytes == 32 * 64, policy


class TestAccum:
    PCP_READ = ("pcp:::perfevent.hwcounters.nest_mba0_imc."
                "PM_MBA0_READ_BYTES.value:cpu87")

    def test_accum_adds_and_resets(self, quiet_summit_papi,
                                   quiet_summit_node):
        es = quiet_summit_papi.create_eventset()
        es.add_event(self.PCP_READ)
        es.start()
        totals = [0]
        quiet_summit_node.socket(0).record_traffic(read_bytes=8 * 64)
        es.accum(totals)
        assert totals == [64]
        quiet_summit_node.socket(0).record_traffic(read_bytes=8 * 64 * 2)
        es.accum(totals)
        assert totals == [64 + 128]
        # accum resets the baseline: stop() sees only post-accum counts.
        assert es.stop() == [0]

    def test_accum_buffer_length_checked(self, quiet_summit_papi):
        es = quiet_summit_papi.create_eventset()
        es.add_event(self.PCP_READ)
        es.start()
        with pytest.raises(PapiInvalidArgument):
            es.accum([0, 0])

    def test_accum_requires_running(self, quiet_summit_papi):
        es = quiet_summit_papi.create_eventset()
        es.add_event(self.PCP_READ)
        from repro.errors import PapiNotRunning

        with pytest.raises(PapiNotRunning):
            es.accum([0])
