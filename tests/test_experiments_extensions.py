"""Extension experiments (POWER10 projection, grid-shape sweep)."""

import pytest

from repro.experiments import run_experiment
from repro.machine.config import POWER10
from repro.measure.expectations import gemm_divergence_band

SEED = 20230613


class TestPower10:
    def test_config_sanity(self):
        assert POWER10.arch == "IBM POWER10"
        assert POWER10.socket.l3_per_core_bytes == 8 * 1024 * 1024
        assert not POWER10.user_privileged  # PCP path still relevant

    def test_band_moves_with_cache_size(self):
        p10 = gemm_divergence_band(POWER10.socket.l3_per_core_bytes)
        assert p10.upper == pytest.approx(1024, abs=1)
        assert p10.lower == pytest.approx(591, abs=1)

    def test_batched_jump_follows_new_boundary(self):
        result = run_experiment("ext-power10",
                                sizes=(512, 720, 1024, 2048), seed=SEED)
        batched = result.extras["batched"]
        # 1024 sits exactly at the new upper bound: clean below, jump at
        # and above it (Summit jumped already at 1024).
        assert batched[720] == pytest.approx(1.0, abs=0.05)
        assert batched[1024] > 50
        assert batched[2048] > 100


class TestGridShape:
    def test_resort_ratio_invariant_across_shapes(self):
        result = run_experiment("ext-gridshape", n=512, seed=SEED)
        per = result.extras["per_shape"]
        for shape, data in per.items():
            assert data["s1cf_ratio"] == pytest.approx(2.0, abs=0.1), shape

    def test_degenerate_grids_lose_one_exchange(self):
        result = run_experiment("ext-gridshape", n=512, seed=SEED)
        per = result.extras["per_shape"]
        # 2x4 runs both All2Alls; 1x8 and 8x1 only one.
        assert per[(2, 4)]["net_bytes"] > per[(1, 8)]["net_bytes"]
        assert per[(2, 4)]["net_bytes"] > per[(8, 1)]["net_bytes"]
