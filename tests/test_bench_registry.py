"""Unit tests for the benchmark registry and script discovery."""

import math
from pathlib import Path

import pytest

from repro.bench import (
    BenchContext,
    all_benchmarks,
    benchmark,
    discover,
    get_benchmark,
)
from repro.bench.registry import (
    DEFAULT_SEED,
    _REGISTRY,
    load_script,
    validate_metrics,
)
from repro.errors import ConfigurationError

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"

#: Every benchmark the paper-reproduction suite ships; discovery must
#: find each one or CI silently stops gating it.
EXPECTED = {
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "table1", "table2",
    "ext-gridshape", "ext-power10", "ext-spmv",
    "ablation-noise", "ablation-pcp-overhead", "ablation-repetitions",
    "ablation-slices", "ablation-store-policy",
}


def test_discover_finds_every_paper_benchmark():
    specs = discover(BENCH_DIR)
    names = {spec.name for spec in specs}
    assert EXPECTED <= names, sorted(EXPECTED - names)
    for spec in specs:
        assert spec.source, spec.name
        assert Path(spec.source).name.startswith("bench_")
        assert spec.tags, f"{spec.name} carries no tags"


def test_discover_works_without_pytest():
    """The CI bench job installs the package without test extras.

    Discovery imports every bench script, so each must be importable
    with pytest absent — the test helpers inside them defer their
    pytest import to call time. Run in a subprocess with the import
    blocked, since this process already has pytest loaded.
    """
    import os
    import subprocess
    import sys

    import repro

    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p
    )
    probe = (
        "import sys\n"
        "class _Block:\n"
        "    def find_module(self, name, path=None):\n"
        "        if name == 'pytest' or name.startswith('pytest.'):\n"
        "            raise ImportError('pytest blocked')\n"
        "sys.meta_path.insert(0, _Block())\n"
        "sys.modules.pop('pytest', None)\n"
        "from repro.bench import discover\n"
        f"specs = discover({str(BENCH_DIR)!r})\n"
        f"assert len(specs) >= {len(EXPECTED)}, len(specs)\n"
        "print(len(specs))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert int(proc.stdout) >= len(EXPECTED)


def test_discover_is_idempotent_and_sorted():
    first = discover(BENCH_DIR)
    second = discover(BENCH_DIR)
    assert [s.name for s in first] == [s.name for s in second]
    assert [s.name for s in first] == sorted(s.name for s in first)


def test_discover_missing_directory_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        discover(tmp_path / "nope")


def test_registered_specs_resolve_by_name():
    discover(BENCH_DIR)
    spec = get_benchmark("fig2")
    assert spec.name == "fig2"
    assert spec is get_benchmark("fig2")
    with pytest.raises(ConfigurationError):
        get_benchmark("no-such-benchmark")


def test_decorator_attaches_spec_and_registers():
    name = "registry-selftest-inline"
    try:
        @benchmark(name, tags=("selftest",))
        def bench_inline(ctx):
            return {"seed_echo": float(ctx.seed)}

        assert bench_inline.benchmark_spec.name == name
        assert get_benchmark(name).tags == ("selftest",)
        assert name in {s.name for s in all_benchmarks()}
        metrics = get_benchmark(name).run()
        assert metrics == {"seed_echo": float(DEFAULT_SEED)}
    finally:
        _REGISTRY.pop(name, None)


def test_same_name_from_two_files_is_rejected(tmp_path):
    body = (
        "from repro.bench import benchmark\n\n"
        "@benchmark('registry-selftest-dupe')\n"
        "def bench_dupe(ctx):\n"
        "    return {'m': 1.0}\n"
    )
    try:
        (tmp_path / "bench_one.py").write_text(body)
        (tmp_path / "bench_two.py").write_text(body)
        with pytest.raises(ConfigurationError, match="registered by both"):
            discover(tmp_path)
    finally:
        _REGISTRY.pop("registry-selftest-dupe", None)


def test_load_script_returns_what_the_file_registered(tmp_path):
    path = tmp_path / "bench_solo.py"
    path.write_text(
        "from repro.bench import benchmark\n\n"
        "@benchmark('registry-selftest-solo', tags=('a', 'b'))\n"
        "def bench_solo(ctx):\n"
        "    return {'m': 2.0}\n"
    )
    try:
        specs = load_script(path)
        assert [s.name for s in specs] == ["registry-selftest-solo"]
        assert specs[0].tags == ("a", "b")
        # Re-loading the same file is a cache hit, not a duplicate.
        assert [s.name for s in load_script(path)] == [
            "registry-selftest-solo"
        ]
    finally:
        _REGISTRY.pop("registry-selftest-solo", None)


@pytest.mark.parametrize(
    "bad",
    [
        None,
        [],
        {},
        {"x": "not a number"},
        {"x": True},
        {"x": math.nan},
        {"x": math.inf},
        {3: 1.0},
    ],
)
def test_result_dict_convention_is_enforced(bad):
    with pytest.raises(ConfigurationError):
        validate_metrics("demo", bad)


def test_validate_metrics_accepts_ints_and_floats():
    clean = validate_metrics("demo", {"a": 1, "b": 2.5})
    assert clean == {"a": 1, "b": 2.5}


def test_bench_context_services():
    ctx = BenchContext()
    assert ctx.seed == DEFAULT_SEED
    ctx.log("hello")
    ctx.log("world")
    assert ctx.logs == ["hello", "world"]
    result = ctx.run_experiment("table1")
    assert ctx.results["table1"] is result
