"""Chrome-trace export of timelines."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.measure.timeline import Timeline, TimelineSample
from repro.measure.traceexport import (
    timeline_to_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture
def timeline():
    return Timeline(samples=[
        TimelineSample("fft-z", 0.0, 0.010, mem_read_rate=50e9,
                       mem_write_rate=1e9, gpu_power_w=300.0,
                       net_recv_rate=0.0),
        TimelineSample("all2all-1", 0.010, 0.015, mem_read_rate=9e9,
                       mem_write_rate=9e9, gpu_power_w=40.0,
                       net_recv_rate=6e9),
    ])


class TestExport:
    def test_duration_events(self, timeline):
        trace = timeline_to_chrome_trace(timeline)
        durations = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(durations) == 2
        assert durations[0]["name"] == "fft-z"
        assert durations[0]["ts"] == 0.0
        assert durations[0]["dur"] == pytest.approx(10_000)  # µs
        assert durations[1]["ts"] == pytest.approx(10_000)

    def test_counter_tracks(self, timeline):
        trace = timeline_to_chrome_trace(timeline)
        counters = {e["name"] for e in trace["traceEvents"]
                    if e["ph"] == "C"}
        assert counters == {"memory traffic", "gpu power", "network"}

    def test_args_carry_rates(self, timeline):
        trace = timeline_to_chrome_trace(timeline)
        fft = [e for e in trace["traceEvents"]
               if e["ph"] == "X" and e["name"] == "fft-z"][0]
        assert fft["args"]["mem_read_GBps"] == 50.0
        assert fft["args"]["gpu_power_W"] == 300.0

    def test_process_metadata(self, timeline):
        trace = timeline_to_chrome_trace(timeline, pid=7,
                                         process_name="rank7")
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"][0]
        assert meta["pid"] == 7
        assert meta["args"]["name"] == "rank7"

    def test_empty_timeline_rejected(self):
        with pytest.raises(ConfigurationError):
            timeline_to_chrome_trace(Timeline(samples=[]))

    def test_write_round_trips_as_json(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(timeline, str(path))
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) > 0

    def test_real_profile_exports(self, tmp_path):
        from repro.fft3d import FFT3DApp
        from repro.measure.timeline import MultiComponentProfiler
        from repro.mpi import ProcessorGrid
        from repro.papi import library_init
        from repro.pcp import start_pmcd_for_node

        app = FFT3DApp(n=128, grid=ProcessorGrid(2, 4), seed=1)
        node0 = app.cluster.nodes[0]
        papi = library_init(node0, pmcd=start_pmcd_for_node(node0))
        tl = MultiComponentProfiler(papi).profile(app.steps(1))
        path = tmp_path / "fft.json"
        write_chrome_trace(tl, str(path))
        data = json.loads(path.read_text())
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert {"fft-z", "s1cf", "all2all-1"} <= names
