"""End-to-end tests for ``repro.cli bench`` and the pcp-stress gate."""

import json

import pytest

from repro.bench.registry import _REGISTRY
from repro.cli import main

SCRIPT = (
    "from repro.bench import benchmark\n\n"
    "@benchmark('cli-tiny', tags=('selftest',))\n"
    "def bench_cli_tiny(ctx):\n"
    "    return {'answer': 42.0, 'acc_dev': 0.05}\n"
)


@pytest.fixture(scope="module")
def bench_env(tmp_path_factory):
    """One frozen-baseline bench run shared by the module's tests."""
    root = tmp_path_factory.mktemp("clibench")
    bench_dir = root / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "bench_cli_tiny.py").write_text(SCRIPT)
    baseline = root / "baseline.json"
    rc = main([
        "bench", "--bench-dir", str(bench_dir),
        "--output-dir", str(root), "--freeze", str(baseline),
        "--jobs", "1", "--timeout", "60",
    ])
    assert rc == 0
    yield {"dir": bench_dir, "baseline": baseline, "root": root}
    _REGISTRY.pop("cli-tiny", None)


def test_bench_writes_schema_valid_report(bench_env):
    from repro.bench import load_report

    artifacts = list(bench_env["root"].glob("BENCH_*.json"))
    assert len(artifacts) == 1
    report = load_report(artifacts[0])
    assert report["summary"] == {
        "total": 1, "ok": 1, "error": 0, "timeout": 0, "crashed": 0,
        "wall_s": report["summary"]["wall_s"],
    }
    [rec] = report["benchmarks"]
    assert rec["name"] == "cli-tiny"
    # The runner injects CPU utilization into every record; it is
    # machine-dependent, so only its presence and sanity are pinned.
    util = rec["metrics"].pop("info_cpu_util")
    assert util >= 0.0
    assert rec["metrics"] == {"answer": 42.0, "acc_dev": 0.05}
    assert report["environment"]["calibration_s"] > 0
    assert report["config"]["seed"] == 20230613


def test_bench_frozen_baseline_embeds_thresholds(bench_env):
    frozen = json.loads(bench_env["baseline"].read_text())
    assert frozen["schema"] == "repro-bench/1"
    assert "thresholds" in frozen


def test_bench_compare_against_own_baseline_passes(bench_env, capsys):
    rc = main([
        "bench", "--bench-dir", str(bench_env["dir"]), "--no-report",
        "--jobs", "1", "--compare", str(bench_env["baseline"]),
    ])
    assert rc == 0
    assert "no regressions" in capsys.readouterr().out


def test_bench_compare_tightened_baseline_fails(bench_env, capsys):
    tightened = json.loads(bench_env["baseline"].read_text())
    for rec in tightened["benchmarks"]:
        rec["metrics"]["acc_dev"] = 0.0
    tightened["thresholds"] = {"metric_abs": 0.01, "metric_rel": 0.0}
    path = bench_env["root"] / "tightened.json"
    path.write_text(json.dumps(tightened))
    argv = [
        "bench", "--bench-dir", str(bench_env["dir"]), "--no-report",
        "--jobs", "1", "--compare", str(path),
    ]
    assert main(argv) == 1
    assert "regression" in capsys.readouterr().out
    assert main(argv + ["--no-fail-on-regression"]) == 0


def test_bench_json_output_is_the_report(bench_env, capsys):
    rc = main([
        "bench", "--bench-dir", str(bench_env["dir"]), "--no-report",
        "--jobs", "1", "--json",
    ])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == "repro-bench/1"
    assert [r["name"] for r in report["benchmarks"]] == ["cli-tiny"]


def test_bench_without_matches_exits_two(bench_env):
    rc = main([
        "bench", "--bench-dir", str(bench_env["dir"]),
        "--filter", "no-such-benchmark", "--no-report",
    ])
    assert rc == 2


def test_bench_dispatches_with_leading_global_flags(bench_env, capsys):
    """`--seed 42 bench` must reach the bench parser, not the
    experiment parser (the subcommand needn't be argv[0])."""
    rc = main([
        "--seed", "99", "bench", "--bench-dir", str(bench_env["dir"]),
        "--no-report", "--jobs", "1", "--json",
    ])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["config"]["seed"] == 99


def test_bench_listed_in_cli_index(capsys):
    assert main(["--list"]) == 0
    assert "bench" in capsys.readouterr().out


# ------------------------------------------------------------ pcp-stress


HEALTHY_STRESS = {
    "clients": 2,
    "clients_completed": 2,
    "errors": [],
    "cross_wired": 0,
    "non_monotone_timestamps": 0,
    "unrecovered_faults": 0,
}


def _patch_stress(monkeypatch, **overrides):
    import repro.pcp.stress as stress

    fake_report = dict(HEALTHY_STRESS, **overrides)
    monkeypatch.setattr(
        stress, "run_stress", lambda **kwargs: dict(fake_report)
    )


def test_pcp_stress_healthy_run_exits_zero(monkeypatch, capsys):
    _patch_stress(monkeypatch)
    assert main(["pcp-stress", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["unrecovered_faults"] == 0


def test_pcp_stress_unrecovered_fault_exits_nonzero(monkeypatch, capsys):
    _patch_stress(
        monkeypatch,
        unrecovered_faults=1,
        clients_completed=1,
        errors=["client 1: still alive after join timeout"],
    )
    assert main(["pcp-stress", "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["unrecovered_faults"] == 1


def test_bench_profile_flag_writes_prof_next_to_report(
    tmp_path, capsys
):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "bench_cli_prof.py").write_text(
        "from repro.bench import benchmark\n\n"
        "@benchmark('cli-prof', tags=('selftest',))\n"
        "def bench_cli_prof(ctx):\n"
        "    return {'answer': 1.0}\n"
    )
    try:
        rc = main([
            "bench", "--bench-dir", str(bench_dir),
            "--output-dir", str(tmp_path), "--profile",
            "--jobs", "1", "--timeout", "60",
        ])
        assert rc == 0
        assert (tmp_path / "cli-prof.prof").is_file()
        assert list(tmp_path.glob("BENCH_*.json"))
    finally:
        _REGISTRY.pop("cli-prof", None)
