"""PAPI event-set state machine and counting semantics."""

import pytest

from repro.errors import (
    PapiInvalidArgument,
    PapiIsRunning,
    PapiNotRunning,
)
from repro.papi.consts import PAPI_RUNNING, PAPI_STOPPED

PCP_READ = ("pcp:::perfevent.hwcounters.nest_mba0_imc."
            "PM_MBA0_READ_BYTES.value:cpu87")
PCP_WRITE = ("pcp:::perfevent.hwcounters.nest_mba0_imc."
             "PM_MBA0_WRITE_BYTES.value:cpu87")


class TestStateMachine:
    def test_initial_state_stopped(self, summit_papi):
        es = summit_papi.create_eventset()
        assert es.state == PAPI_STOPPED
        assert not es.running

    def test_start_requires_events(self, summit_papi):
        es = summit_papi.create_eventset()
        with pytest.raises(PapiInvalidArgument):
            es.start()

    def test_start_stop_cycle(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        es.start()
        assert es.state == PAPI_RUNNING
        es.stop()
        assert es.state == PAPI_STOPPED

    def test_double_start_rejected(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        es.start()
        with pytest.raises(PapiIsRunning):
            es.start()

    def test_read_requires_running(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        with pytest.raises(PapiNotRunning):
            es.read()

    def test_stop_requires_running(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        with pytest.raises(PapiNotRunning):
            es.stop()

    def test_add_while_running_rejected(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        es.start()
        with pytest.raises(PapiIsRunning):
            es.add_event(PCP_WRITE)

    def test_cleanup(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        es.cleanup()
        assert len(es) == 0
        assert es.component is None

    def test_cleanup_while_running_rejected(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        es.start()
        with pytest.raises(PapiIsRunning):
            es.cleanup()


class TestCounting:
    def test_counts_are_relative_to_start(self, quiet_summit_papi,
                                          quiet_summit_node):
        quiet_summit_node.socket(0).record_traffic(read_bytes=8 * 64 * 100)
        es = quiet_summit_papi.create_eventset()
        es.add_event(PCP_READ)
        es.start()
        quiet_summit_node.socket(0).record_traffic(read_bytes=8 * 64)
        values = es.stop()
        assert values[0] == 64  # only the delta, channel 0's share

    def test_reset_rezeroes(self, quiet_summit_papi, quiet_summit_node):
        es = quiet_summit_papi.create_eventset()
        es.add_event(PCP_READ)
        es.start()
        quiet_summit_node.socket(0).record_traffic(read_bytes=8 * 64)
        es.reset()
        assert es.read()[0] == 0

    def test_pcp_window_admits_background_noise(self, summit_papi,
                                                summit_node):
        # On a *noisy* node, the PCP round trips themselves advance the
        # clock, so background traffic lands inside the window — the
        # measurement overhead the paper quantifies.
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        es.start()
        values = es.stop()
        assert values[0] > 0

    def test_read_dict_keys(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_events([PCP_READ, PCP_WRITE])
        es.start()
        values = es.read_dict()
        assert set(values) == {PCP_READ, PCP_WRITE}

    def test_instance_selects_socket(self, quiet_summit_papi,
                                     quiet_summit_node):
        other = ("pcp:::perfevent.hwcounters.nest_mba0_imc."
                 "PM_MBA0_READ_BYTES.value:cpu175")
        es = quiet_summit_papi.create_eventset()
        es.add_events([PCP_READ, other])
        es.start()
        quiet_summit_node.socket(1).record_traffic(read_bytes=8 * 64)
        values = es.stop_dict()
        assert values[PCP_READ] == 0
        assert values[other] == 64


class TestComponentBinding:
    def test_single_component_per_eventset(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        nvml_event = summit_papi.component("nvml").list_events()[0]
        with pytest.raises(PapiInvalidArgument):
            es.add_event(nvml_event)

    def test_component_property(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_event(PCP_READ)
        assert es.component.name == "pcp"

    def test_pcp_batched_read_single_round_trip(self, summit_papi):
        es = summit_papi.create_eventset()
        es.add_events([PCP_READ, PCP_WRITE])
        component = summit_papi.component("pcp")
        before = component.context.round_trips
        es.start()
        after_start = component.context.round_trips
        # One batched fetch, regardless of event count.
        assert after_start - before == 1


class TestInstantaneousEvents:
    def test_nvml_power_is_gauge(self, summit_papi, summit_node):
        event = summit_papi.component("nvml").list_events()[0]
        es = summit_papi.create_eventset()
        es.add_event(event)
        es.start()
        # Idle power in mW, not a zero delta.
        idle_mw = int(summit_node.config.gpu.idle_power_w * 1000)
        assert es.read()[0] == idle_mw
