"""End-to-end tests of the paper's headline claims (Conclusion, §V).

Each test names the claim it pins. These run the full stack —
simulated hardware, PCP daemon, PAPI components, kernels — exactly as
a user of the library would.
"""

import pytest

from repro.kernels.blas import Gemm
from repro.errors import PapiPermissionDenied
from repro.measure.repetition import repetitions_for
from repro.measure.session import MeasurementSession

SEED = 777


class TestClaimPCPAccuracy:
    """"Memory traffic measurements from the PAPI PCP component are as
    accurate as those measured directly from the perf_uncore counters."
    """

    def test_same_kernel_same_shape_via_both_paths(self):
        pcp = MeasurementSession("summit", via="pcp", seed=SEED)
        direct = MeasurementSession("tellico", via="perf_event_uncore",
                                    seed=SEED)
        for n in (512, 2048):
            cores_p = pcp.batch_core_count()
            cores_d = direct.batch_core_count()
            reps = repetitions_for(n)
            a = pcp.measure_kernel(Gemm(n), n_cores=cores_p,
                                   repetitions=reps)
            b = direct.measure_kernel(Gemm(n), n_cores=cores_d,
                                      repetitions=reps)
            # Per-core read ratios agree within a few percent.
            assert a.read_ratio == pytest.approx(b.read_ratio, rel=0.15)


class TestClaimRepetitionsAmortiseNoise:
    """"Adapting the number of successive executions of performance-
    critical kernels serves as a technique to accurately measure memory
    traffic."""

    def test_adaptive_reps_reduce_error_at_small_sizes(self):
        session = MeasurementSession("summit", seed=SEED)
        n = 96
        one = session.measure_kernel(Gemm(n), repetitions=1)
        many = session.measure_kernel(Gemm(n),
                                      repetitions=repetitions_for(n))
        err_one = abs(one.read_ratio - 1.0)
        err_many = abs(many.read_ratio - 1.0)
        assert err_many < err_one

    def test_small_kernels_noisy_regardless_of_path(self):
        """"Measuring the memory traffic of small kernels ... leads to
        measurements fraught with noise, regardless of the measuring
        infrastructure or architecture."""
        for machine in ("summit", "tellico", "skylake"):
            session = MeasurementSession(machine, seed=SEED)
            r = session.measure_kernel(Gemm(48), repetitions=1)
            assert abs(r.read_ratio - 1.0) > 0.25, machine


class TestClaimPrivilegeGate:
    """PCP "enables all PAPI users to monitor nest hardware events from
    user space without elevated privileges"."""

    def test_unprivileged_direct_access_fails_pcp_succeeds(self):
        session = MeasurementSession("summit", via="perf_event_uncore",
                                     seed=SEED)
        with pytest.raises(PapiPermissionDenied):
            session.measure_kernel(Gemm(64))
        pcp_session = MeasurementSession("summit", via="pcp", seed=SEED)
        result = pcp_session.measure_kernel(Gemm(64))
        assert result.measured.total_bytes > 0


class TestClaimBatchingIsolatesSlices:
    """"It is useful ... to account for such peculiarities by executing
    a batch of kernels" — batched kernels pin each core to its 5 MB
    share, making measurements match expectations."""

    def test_batched_matches_better_than_single_below_boundary(self):
        session = MeasurementSession("summit", seed=SEED)
        n = 720  # below the per-core boundary of ~809
        reps = repetitions_for(n)
        single = session.measure_kernel(Gemm(n), n_cores=1,
                                        repetitions=reps)
        batched = session.measure_kernel(
            Gemm(n), n_cores=session.batch_core_count(), repetitions=reps)
        assert abs(batched.read_ratio - 1.0) < abs(single.read_ratio - 1.0)


class TestClaimSkylakeGeneralises:
    """"We also reproduced this behavior on an Intel Skylake
    architecture ... neither a PCP-related nor POWER9-specific
    phenomenon." (Extraneous capped-GEMV write traffic.)"""

    def test_capped_gemv_write_excess_on_skylake(self):
        from repro.kernels.blas import CappedGemv

        session = MeasurementSession("skylake", seed=SEED)
        k = CappedGemv(m=1024, n=1024, p=1024)
        r = session.measure_kernel(k, n_cores=8, repetitions=50)
        assert r.write_ratio > 1.3
        assert r.read_ratio == pytest.approx(1.0, abs=0.3)
