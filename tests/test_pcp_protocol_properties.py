"""Property-based round-trip tests for the PCP wire codec.

Invariants:

* any encodable request/response survives encode → decode unchanged;
* malformed lines — bad JSON, non-objects, unknown types, unexpected
  or missing fields, garbage bytes — raise :class:`PCPError`, never
  ``KeyError``/``TypeError``; a hostile byte stream cannot crash the
  daemon loop.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PCPError
from repro.pcp import protocol
from repro.pcp.protocol import (
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

# JSON round-trips arbitrary unicode; exclude surrogates which json
# cannot encode.
metric_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1,
    max_size=40)
pmids = st.integers(min_value=0, max_value=(1 << 31) - 1)
statuses = st.sampled_from(list(protocol.PCPStatus))
instance_values = st.dictionaries(
    st.text(alphabet=st.characters(blacklist_categories=("Cs",)),
            min_size=1, max_size=16),
    st.integers(min_value=0, max_value=1 << 62),
    max_size=4)


class TestRequestRoundTrip:
    @given(st.tuples() | st.lists(metric_names, max_size=8).map(tuple))
    @settings(max_examples=50, deadline=None)
    def test_lookup_request(self, names):
        request = protocol.LookupRequest(names=tuple(names))
        assert decode_request(encode_request(request)) == request

    @given(st.lists(pmids, max_size=16).map(tuple))
    @settings(max_examples=50, deadline=None)
    def test_fetch_request(self, ids):
        request = protocol.FetchRequest(pmids=ids)
        assert decode_request(encode_request(request)) == request

    @given(metric_names | st.just(""))
    @settings(max_examples=50, deadline=None)
    def test_children_request(self, prefix):
        request = protocol.ChildrenRequest(prefix=prefix)
        assert decode_request(encode_request(request)) == request


class TestResponseRoundTrip:
    @given(statuses, st.lists(pmids, max_size=8).map(tuple), st.integers(0, 99))
    @settings(max_examples=50, deadline=None)
    def test_lookup_response(self, status, ids, generation):
        response = protocol.LookupResponse(
            status=status, pmids=ids,
            name_status=tuple(protocol.PCPStatus.OK for _ in ids),
            generation=generation)
        assert decode_response(encode_response(response)) == response

    @given(statuses,
           st.floats(min_value=0, max_value=1e9, allow_nan=False),
           st.lists(st.tuples(pmids, instance_values), max_size=4),
           st.integers(0, 99), st.integers(0, 99))
    @settings(max_examples=50, deadline=None)
    def test_fetch_response(self, status, timestamp, metrics, gen, boot):
        response = protocol.FetchResponse(
            status=status, timestamp=timestamp,
            metrics=tuple(protocol.MetricValues(pmid=p, values=v)
                          for p, v in metrics),
            generation=gen, boot_id=boot)
        assert decode_response(encode_response(response)) == response

    @given(statuses, st.lists(metric_names, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_children_response(self, status, children):
        response = protocol.ChildrenResponse(
            status=status, children=tuple(children),
            leaf_flags=tuple(i % 2 == 0 for i in range(len(children))))
        assert decode_response(encode_response(response)) == response

    @given(statuses, metric_names | st.just(""))
    @settings(max_examples=50, deadline=None)
    def test_error_response(self, status, detail):
        response = protocol.ErrorResponse(status=status, detail=detail)
        assert decode_response(encode_response(response)) == response


class TestVersionedPDUs:
    """Protocol-version negotiation and wire compatibility (v2)."""

    versions = st.integers(min_value=1, max_value=9)

    @given(st.lists(pmids, max_size=16).map(tuple), versions)
    @settings(max_examples=50, deadline=None)
    def test_versioned_fetch_request_round_trip(self, ids, version):
        request = protocol.FetchRequest(pmids=ids, version=version)
        assert decode_request(encode_request(request)) == request

    @given(st.lists(metric_names, max_size=8).map(tuple), versions)
    @settings(max_examples=50, deadline=None)
    def test_versioned_lookup_request_round_trip(self, names, version):
        request = protocol.LookupRequest(names=names, version=version)
        assert decode_request(encode_request(request)) == request

    @given(statuses, st.floats(min_value=0, max_value=1e9,
                               allow_nan=False),
           st.lists(st.tuples(pmids, instance_values), max_size=4),
           versions)
    @settings(max_examples=50, deadline=None)
    def test_versioned_fetch_response_round_trip(self, status, timestamp,
                                                 metrics, version):
        response = protocol.FetchResponse(
            status=status, timestamp=timestamp,
            metrics=tuple(protocol.MetricValues(pmid=p, values=v)
                          for p, v in metrics),
            version=version)
        assert decode_response(encode_response(response)) == response

    @given(versions)
    @settings(max_examples=20, deadline=None)
    def test_open_handshake_round_trip(self, version):
        request = protocol.OpenRequest(version=version)
        assert decode_request(encode_request(request)) == request
        response = protocol.OpenResponse(
            status=protocol.PCPStatus.OK, version=version,
            hostname="simnode", generation=3, boot_id=2)
        assert decode_response(encode_response(response)) == response

    @given(st.lists(metric_names, min_size=1, max_size=4).map(tuple),
           st.floats(min_value=0, max_value=1e6, allow_nan=False),
           st.floats(min_value=-1, max_value=1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_archive_fetch_round_trip(self, metrics, t0, t1):
        request = protocol.ArchiveFetchRequest(metrics=metrics,
                                               t0=t0, t1=t1)
        assert decode_request(encode_request(request)) == request
        response = protocol.ArchiveFetchResponse(
            status=protocol.PCPStatus.OK,
            samples=(protocol.ArchiveSample(
                timestamp=t0, values={f"{m}|cpu87": 1 for m in metrics}),),
            generation=1)
        assert decode_response(encode_response(response)) == response

    def test_v1_pdus_omit_version_on_wire(self):
        # Old peers' strict decoders reject unknown keys, so v1 PDUs
        # must stay byte-compatible with the seed wire format.
        for pdu, codec in (
                (protocol.FetchRequest(pmids=(1, 2)), encode_request),
                (protocol.LookupRequest(names=("a",)), encode_request),
                (protocol.FetchResponse(status=protocol.PCPStatus.OK,
                                        timestamp=1.0), encode_response),
                (protocol.ErrorResponse(status=protocol.PCPStatus.OK),
                 encode_response)):
            assert b"version" not in codec(pdu), pdu

    def test_v2_pdus_carry_version_on_wire(self):
        line = encode_request(protocol.FetchRequest(pmids=(1,),
                                                    version=2))
        assert json.loads(line)["version"] == 2

    def test_missing_version_decodes_as_v1(self):
        decoded = decode_request(b'{"type": "FetchRequest", "pmids": [1]}')
        assert decoded.version == 1

    @given(st.none() | st.booleans() | st.floats() | st.text(max_size=4)
           | st.integers(max_value=0))
    @settings(max_examples=50, deadline=None)
    def test_bad_version_rejected(self, version):
        line = json.dumps({"type": "FetchRequest", "pmids": [1],
                           "version": version}).encode()
        with pytest.raises(PCPError):
            decode_request(line)

    @given(st.integers(min_value=-5, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_negotiate_version_bounds(self, peer):
        negotiated = protocol.negotiate_version(peer)
        assert 1 <= negotiated <= protocol.PROTOCOL_VERSION
        if 1 <= peer <= protocol.PROTOCOL_VERSION:
            assert negotiated == peer


class TestMalformedLines:
    """Malformed input raises PCPError — never KeyError/TypeError."""

    @given(st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_crash_request_decode(self, blob):
        try:
            decode_request(blob)
        except PCPError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_crash_response_decode(self, blob):
        try:
            decode_response(blob)
        except PCPError:
            pass

    @given(st.dictionaries(
        st.sampled_from(["type", "names", "pmids", "prefix", "status",
                         "bogus", "extra"]),
        st.none() | st.integers() | st.text(max_size=8)
        | st.lists(st.integers(), max_size=3)))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_objects_never_crash_request_decode(self, obj):
        line = json.dumps(obj).encode()
        try:
            decoded = decode_request(line)
        except PCPError:
            return
        assert type(decoded).__name__ == obj.get("type")

    def test_bad_json(self):
        with pytest.raises(PCPError):
            decode_request(b"{not json")

    def test_non_object(self):
        with pytest.raises(PCPError):
            decode_request(b"[1, 2, 3]")
        with pytest.raises(PCPError):
            decode_response(b'"a string"')

    def test_unknown_request_type(self):
        with pytest.raises(PCPError):
            decode_request(b'{"type": "NukeRequest"}')

    def test_unknown_response_type(self):
        with pytest.raises(PCPError):
            decode_response(b'{"type": "NukeResponse"}')

    def test_missing_required_field_is_pcp_error(self):
        with pytest.raises(PCPError):
            decode_request(b'{"type": "LookupRequest"}')

    def test_unknown_extra_keys_rejected_explicitly(self):
        # Regression: extra keys used to reach the dataclass constructor
        # and crash with TypeError instead of a protocol-level error.
        line = (b'{"type": "FetchRequest", "pmids": [1], '
                b'"surprise": true}')
        with pytest.raises(PCPError, match="surprise"):
            decode_request(line)

    def test_known_fields_still_accepted(self):
        line = b'{"type": "FetchRequest", "pmids": [1, 2]}'
        assert decode_request(line) == protocol.FetchRequest(pmids=(1, 2))

    def test_non_list_pmids_rejected(self):
        with pytest.raises(PCPError):
            decode_request(b'{"type": "FetchRequest", "pmids": 7}')

    def test_out_of_range_status_rejected(self):
        with pytest.raises(PCPError):
            decode_response(b'{"type": "ErrorResponse", "status": 12345}')

    def test_truncated_pdu_rejected(self):
        full = encode_response(protocol.FetchResponse(
            status=protocol.PCPStatus.OK, timestamp=1.0))
        with pytest.raises(PCPError):
            decode_response(full[:len(full) // 2])
