"""Every example script runs to completion and prints its key lines."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "DENIED" in out           # the privilege gate
        assert "batching matches" in out

    def test_gemm_noise_and_repetitions(self):
        out = run_example("gemm_noise_and_repetitions.py")
        assert "(Fig 2a)" in out and "(Fig 4b)" in out
        assert "Takeaway" in out

    def test_prefetch_and_store_bypass(self):
        out = run_example("prefetch_and_store_bypass.py")
        assert "dcbtst" in out
        assert "s1cf-ln2" in out

    def test_fft3d_profile_small(self):
        out = run_example("fft3d_profile.py", "512")
        assert "rank 0 profile" in out
        assert "all2all" in out
        assert "GPU power" in out

    def test_qmcpack_profile(self):
        out = run_example("qmcpack_profile.py")
        assert "vmc-nodrift" in out and "dmc" in out
        assert "exact ground-state energy" in out.lower() or \
            "exact ground-state energy" in out

    def test_counter_validation(self):
        out = run_example("counter_validation.py")
        assert "validated" in out
        assert "UNRELIABLE" in out  # the deliberately broken counter

    def test_regions_and_archives(self):
        out = run_example("regions_and_archives.py")
        assert "Per-region report" in out
        assert "pmlogger archive" in out

    def test_spectral_turbulence(self):
        out = run_example("spectral_turbulence.py")
        assert "diffusion dissipates" in out
        assert "Hardware profile" in out

    def test_custom_kernel_dsl(self):
        out = run_example("custom_kernel_dsl.py")
        assert "DSL-predicted traffic" in out
        assert "Ground-truth check" in out
        assert "measured/predicted" in out

    def test_roofline_spmv_vs_gemm(self):
        out = run_example("roofline_spmv_vs_gemm.py")
        assert "converged" in out
        assert "memory" in out and "compute" in out
        assert "PAPI counters" in out
