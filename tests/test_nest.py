"""Nest counter block: naming, parsing, and the privilege gate."""

import pytest

from repro.errors import PrivilegeError, SimulationError
from repro.machine.memory import MemoryController
from repro.machine.nest import NestCounterBlock, nest_event_names


@pytest.fixture
def nest():
    return NestCounterBlock(0, MemoryController(n_channels=8))


class TestNaming:
    def test_sixteen_events_per_socket(self):
        names = nest_event_names(8)
        assert len(names) == 16
        assert "PM_MBA0_READ_BYTES" in names
        assert "PM_MBA7_WRITE_BYTES" in names

    def test_event_names_property(self, nest):
        assert nest.event_names == nest_event_names(8)


class TestParsing:
    def test_parse_read(self, nest):
        parsed = nest.parse_event("PM_MBA3_READ_BYTES")
        assert parsed == {"channel": 3, "write": 0}

    def test_parse_write(self, nest):
        parsed = nest.parse_event("PM_MBA7_WRITE_BYTES")
        assert parsed == {"channel": 7, "write": 1}

    @pytest.mark.parametrize("bad", [
        "PM_MBA_READ_BYTES", "PM_MBA8_READ_BYTES", "PM_MBA0_READ",
        "MBA0_READ_BYTES", "PM_MBA0_FLUSH_BYTES", "PM_MBAx_READ_BYTES",
    ])
    def test_parse_rejects(self, nest, bad):
        with pytest.raises(SimulationError):
            nest.parse_event(bad)


class TestPrivilegeGate:
    def test_unprivileged_read_denied(self, nest):
        with pytest.raises(PrivilegeError):
            nest.read_event("PM_MBA0_READ_BYTES", privileged=False)

    def test_privileged_read_allowed(self, nest):
        assert nest.read_event("PM_MBA0_READ_BYTES", privileged=True) == 0

    def test_values_follow_controller(self):
        mc = MemoryController(n_channels=8)
        nest = NestCounterBlock(0, mc)
        mc.record_read(8 * 64 * 10)
        mc.record_write(8 * 64 * 5)
        values = nest.read_all(privileged=True)
        total_r = sum(v for k, v in values.items() if "READ" in k)
        total_w = sum(v for k, v in values.items() if "WRITE" in k)
        assert total_r == 8 * 64 * 10
        assert total_w == 8 * 64 * 5
