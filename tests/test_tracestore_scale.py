"""Nightly scale validation: GEMM N=512 through the disk trace store.

The N=512 exact trace (~270M accesses, ~4 GB of columns) cannot be
materialized next to a full in-RAM reference, which is exactly the
workload the store exists for. A helper subprocess generates the
trace through the bounded-memory block emitter, simulates it twice —
chunk-streamed and sharded-from-disk — and reports its peak RSS. The
parent asserts the two disk paths agree byte-for-byte, the analytic
law cross-validates within the usual 2%, and peak RSS stayed well
below the full-trace footprint.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

N = 512

_HELPER = r"""
import json, resource, sys

from repro.engine.analytic import CacheContext
from repro.engine.exact import ExactEngine, ShardedExactEngine
from repro.engine.tracestore import TraceStore
from repro.kernels.blas import Gemm
from repro.machine.config import CacheConfig
from repro.units import MIB

n, root = int(sys.argv[1]), sys.argv[2]
kernel = Gemm(n)
cache = CacheConfig(capacity_bytes=4 * MIB)

store = TraceStore(root, verify="meta")
entry = store.get_or_create(kernel)

streamed = ExactEngine(cache).run_nest(kernel.streams(), entry,
                                       chunk_rows=1 << 20)
sharded = ShardedExactEngine(cache, n_shards=2,
                             checkpoint_dir=root + "/ckpt").run_nest(
    kernel.streams(), entry, chunk_rows=1 << 20)
analytic = kernel.traffic(CacheContext(capacity_bytes=4 * MIB))

usage = resource.getrusage(resource.RUSAGE_SELF)
children = resource.getrusage(resource.RUSAGE_CHILDREN)
print(json.dumps({
    "rows": entry.rows,
    "trace_bytes": entry.nbytes,
    "streamed": [streamed.read_bytes, streamed.write_bytes],
    "sharded": [sharded.read_bytes, sharded.write_bytes],
    "analytic": [analytic.read_bytes, analytic.write_bytes],
    "peak_rss_kb": max(usage.ru_maxrss, children.ru_maxrss),
}))
"""


@pytest.mark.slow
def test_gemm_512_cross_validates_from_disk_bounded_rss(tmp_path):
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _HELPER, str(N), str(tmp_path / "store")],
        env=env, capture_output=True, text=True, timeout=3600,
    )
    assert proc.returncode == 0, proc.stderr[-4000:]
    report = json.loads(proc.stdout.splitlines()[-1])

    # Both disk-fed paths must agree exactly, and cross-validate the
    # analytic law like the in-RAM N=256 test does.
    assert report["streamed"] == report["sharded"]
    for got, want in zip(report["streamed"], report["analytic"]):
        assert want == pytest.approx(got, rel=0.02)

    # The point of the store: peak RSS bounded far below the ~4 GB
    # column footprint (chunks + sector-expansion temporaries only).
    trace_mb = report["trace_bytes"] / 1e6
    rss_mb = report["peak_rss_kb"] / 1e3
    assert report["rows"] > 100_000_000
    assert trace_mb > 3000
    assert rss_mb < trace_mb / 3, (
        f"peak RSS {rss_mb:.0f} MB not bounded vs {trace_mb:.0f} MB trace")
    assert rss_mb < 1300
