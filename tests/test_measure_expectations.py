"""Expected-traffic formulas and divergence boundaries (Eqs. 3, 4, 7)."""

import pytest

from repro.measure.expectations import (
    CAPPED_GEMV_TRANSITION,
    gemm_divergence_band,
    gemm_expected_bytes,
    gemv_expected_bytes,
    resort_expected_bytes,
    s1cf_ln2_boundary,
)
from repro.units import MIB


class TestEquation3And4:
    def test_paper_band(self):
        band = gemm_divergence_band(5 * MIB)
        # Eq. 3: N ~ 467; Eq. 4: N ~ 809.
        assert band.lower == pytest.approx(467, abs=1)
        assert band.upper == pytest.approx(809, abs=1)

    def test_band_contains(self):
        band = gemm_divergence_band(5 * MIB)
        assert band.contains(600)
        assert not band.contains(100)
        assert not band.contains(2000)

    def test_band_scales_with_cache(self):
        small = gemm_divergence_band(5 * MIB)
        big = gemm_divergence_band(20 * MIB)
        assert big.lower == pytest.approx(2 * small.lower, rel=0.01)


class TestEquation7:
    def test_paper_boundary(self):
        # 4*(16N^2/8) + 16N^2/8 = 5 MiB  ->  N ~ 724.
        assert s1cf_ln2_boundary(5 * MIB, 8) == pytest.approx(724, abs=1)

    def test_scales_with_processes(self):
        # More processes -> smaller per-rank slab -> larger boundary.
        assert s1cf_ln2_boundary(5 * MIB, 32) > s1cf_ln2_boundary(5 * MIB, 8)


class TestExpectedBytes:
    def test_gemm(self):
        e = gemm_expected_bytes(100)
        assert e["read_bytes"] == 3 * 100 * 100 * 8
        assert e["write_bytes"] == 100 * 100 * 8

    def test_gemv(self):
        e = gemv_expected_bytes(50, 20)
        assert e["read_bytes"] == (50 * 20 + 50 + 20) * 8
        assert e["write_bytes"] == 50 * 8

    def test_resort_ratios(self):
        e = resort_expected_bytes(1000, reads_per_write=2.0)
        assert e["read_bytes"] == 2 * e["write_bytes"]
        assert e["write_bytes"] == 16000

    def test_transition_constant(self):
        assert CAPPED_GEMV_TRANSITION == 1280
