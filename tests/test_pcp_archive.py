"""On-disk metric archive: durability, crash recovery, maintenance.

The archive is the fabric's pmlogger subsystem; its contract is that
replay is indistinguishable from having watched the live samples, no
matter how the writer died or how many times the volumes were rotated,
retained or compacted in between.
"""

import json
import os

import pytest

from repro.errors import ArchiveCorruptionError, ArchiveError, PCPError
from repro.pcp.archive import (
    ArchiveRecord,
    MetricArchive,
    _encode_record,
    rates_from_records,
)

METRIC = "perfevent.hwcounters.nest_mcs01.reads.value"


def make_record(i, value=None, gap=False):
    return ArchiveRecord(
        timestamp=float(i),
        values={(METRIC, "cpu87"): 1000 * i if value is None else value},
        gap=gap)


@pytest.fixture
def archive(tmp_path):
    with MetricArchive.create(str(tmp_path / "arch"),
                              hostname="simnode",
                              volume_records=4) as arch:
        yield arch


class TestRoundTrip:
    def test_append_replay(self, archive):
        for i in range(1, 11):
            archive.append(make_record(i))
        records = archive.records()
        assert [r.timestamp for r in records] == [float(i)
                                                 for i in range(1, 11)]
        assert records[0].values[(METRIC, "cpu87")] == 1000

    def test_auto_rotation_seals_volumes(self, archive):
        for i in range(1, 11):
            archive.append(make_record(i))
        # volume_records=4 -> two sealed volumes + a 2-record tail.
        assert len(archive.volumes) == 2
        assert all(v.records == 4 for v in archive.volumes)
        assert len(archive) == 10

    def test_reopen_replays_identically(self, archive):
        for i in range(1, 8):
            archive.append(make_record(i))
        before = archive.records()
        archive.close()
        reopened = MetricArchive.open(archive.path)
        assert reopened.records() == before
        assert reopened.hostname == "simnode"

    def test_series_and_window(self, archive):
        for i in range(1, 9):
            archive.append(make_record(i))
        series = archive.series(METRIC, "cpu87")
        assert series[0] == (1.0, 1000)
        windowed = archive.records(t0=3.0, t1=5.0)
        assert [r.timestamp for r in windowed] == [3.0, 4.0, 5.0]

    def test_rates_match_shared_helper(self, archive):
        for i in range(1, 6):
            archive.append(make_record(i))
        assert archive.rates(METRIC, "cpu87") == rates_from_records(
            archive.records(), METRIC, "cpu87")
        assert all(rate == pytest.approx(1000.0)
                   for _, rate in archive.rates(METRIC, "cpu87"))

    def test_gap_records_restart_rate_curve(self, archive):
        for i in range(1, 7):
            archive.append(make_record(i, gap=(i == 4)))
        rates = archive.rates(METRIC, "cpu87")
        # The interval ending at the gap record (t=4) is unusable; the
        # gap record then baselines the next interval.
        assert [t for t, _ in rates] == [2.0, 3.0, 5.0, 6.0]

    def test_pipe_in_names_rejected(self, archive):
        with pytest.raises(ArchiveError):
            archive.append(ArchiveRecord(
                timestamp=1.0, values={("a|b", "cpu87"): 1}))


class TestCrashRecovery:
    def _seed(self, tmp_path, n=6):
        arch = MetricArchive.create(str(tmp_path / "arch"),
                                    volume_records=4)
        for i in range(1, n + 1):
            arch.append(make_record(i))
        # Simulate a crash: no close(), no final index write.
        if arch._tail_fh is not None:
            arch._tail_fh.flush()
        return arch.path

    def test_open_after_crash_keeps_all_records(self, tmp_path):
        path = self._seed(tmp_path)
        arch = MetricArchive.open(path)
        assert [r.timestamp for r in arch.records()] == [
            float(i) for i in range(1, 7)]

    def test_partial_tail_line_truncated(self, tmp_path):
        path = self._seed(tmp_path)
        tail = os.path.join(path, "volume.00001.jsonl")
        with open(tail, "ab") as fh:
            fh.write(b'deadbeef {"t": 99')  # torn mid-append
        arch = MetricArchive.open(path)
        assert [r.timestamp for r in arch.records()] == [
            float(i) for i in range(1, 7)]
        # The torn bytes are physically gone: the tail is writable again.
        assert os.path.getsize(tail) > 0

    def test_corrupt_tail_record_truncated(self, tmp_path):
        path = self._seed(tmp_path)
        tail = os.path.join(path, "volume.00001.jsonl")
        with open(tail, "ab") as fh:
            fh.write(b"00000000 {}\n")  # checksum mismatch
        arch = MetricArchive.open(path)
        assert len(arch.records()) == 6

    def test_append_resumes_after_recovery(self, tmp_path):
        path = self._seed(tmp_path)
        arch = MetricArchive.open(path)
        arch.append(make_record(7))
        arch.close()
        assert len(MetricArchive.open(path).records()) == 7

    def test_vanished_tail_restarts_empty(self, tmp_path):
        path = self._seed(tmp_path)
        os.unlink(os.path.join(path, "volume.00001.jsonl"))
        arch = MetricArchive.open(path)
        # The sealed volume survives; only the unsealed tail is lost.
        assert [r.timestamp for r in arch.records()] == [
            1.0, 2.0, 3.0, 4.0]
        arch.append(make_record(9))
        assert len(arch.records()) == 5

    def test_open_non_archive_raises(self, tmp_path):
        with pytest.raises(ArchiveError):
            MetricArchive.open(str(tmp_path))


class TestCorruptionDetection:
    def _sealed(self, tmp_path):
        arch = MetricArchive.create(str(tmp_path / "arch"),
                                    volume_records=3)
        for i in range(1, 10):
            arch.append(make_record(i))
        arch.rotate()
        return arch

    def test_bit_flip_detected_strict(self, tmp_path):
        arch = self._sealed(tmp_path)
        victim = os.path.join(arch.path, arch.volumes[0].name)
        with open(victim, "r+b") as fh:
            fh.seek(15)
            byte = fh.read(1)
            fh.seek(15)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(ArchiveCorruptionError):
            arch.records()
        assert arch.volumes[0].name in arch.verify()

    def test_bit_flip_quarantined_non_strict(self, tmp_path):
        arch = self._sealed(tmp_path)
        victim = os.path.join(arch.path, arch.volumes[1].name)
        with open(victim, "r+b") as fh:
            fh.seek(15)
            byte = fh.read(1)
            fh.seek(15)
            fh.write(bytes([byte[0] ^ 0xFF]))
        survivors = arch.records(strict=False)
        assert arch.quarantined == [arch.volumes[1].name]
        # Only the corrupt volume's 3 records are lost.
        assert len(survivors) == 6

    def test_missing_volume_detected(self, tmp_path):
        arch = self._sealed(tmp_path)
        os.unlink(os.path.join(arch.path, arch.volumes[0].name))
        with pytest.raises(ArchiveCorruptionError):
            arch.records()

    def test_record_count_mismatch_detected(self, tmp_path):
        arch = self._sealed(tmp_path)
        victim = os.path.join(arch.path, arch.volumes[0].name)
        extra = _encode_record(make_record(99))
        with open(victim, "a", encoding="utf-8") as fh:
            fh.write(extra)
        with pytest.raises(ArchiveCorruptionError):
            arch.records()


class TestMaintenance:
    def _filled(self, tmp_path, n=12, volume_records=3):
        arch = MetricArchive.create(str(tmp_path / "arch"),
                                    volume_records=volume_records)
        for i in range(1, n + 1):
            arch.append(make_record(i))
        return arch

    def test_retain_max_volumes_drops_oldest(self, tmp_path):
        arch = self._filled(tmp_path)  # 3 sealed + 3-record tail
        dropped = arch.retain(max_volumes=1)
        assert dropped == ["volume.00000.jsonl", "volume.00001.jsonl"]
        assert [r.timestamp for r in arch.records()] == [
            float(i) for i in range(7, 13)]
        for name in dropped:
            assert not os.path.exists(os.path.join(arch.path, name))

    def test_retain_max_records_counts_tail(self, tmp_path):
        arch = self._filled(tmp_path)
        arch.retain(max_records=7)
        # Tail (3 records) is never dropped; sealed volumes go oldest
        # first until <= 7 records remain.
        assert len(arch) == 6

    def test_retain_never_drops_tail(self, tmp_path):
        arch = self._filled(tmp_path)
        arch.retain(max_volumes=0, max_records=0)
        assert len(arch) == 3  # the unsealed tail survives
        assert arch.volumes == []

    def test_retain_noop_returns_empty(self, tmp_path):
        arch = self._filled(tmp_path)
        assert arch.retain(max_volumes=10) == []

    def test_retain_survives_reopen(self, tmp_path):
        arch = self._filled(tmp_path)
        arch.retain(max_volumes=1)
        arch.close()
        assert len(MetricArchive.open(arch.path).records()) == 6

    def test_compact_preserves_replay(self, tmp_path):
        arch = self._filled(tmp_path)
        before_records = arch.records()
        before_rates = arch.rates(METRIC, "cpu87")
        name = arch.compact()
        assert name is not None
        assert len(arch.volumes) == 1
        assert arch.records() == before_records
        assert arch.rates(METRIC, "cpu87") == before_rates
        assert not arch.verify()

    def test_compact_single_volume_noop(self, tmp_path):
        arch = self._filled(tmp_path, n=3)
        arch.rotate()
        assert arch.compact() is None

    def test_compact_then_append_then_reopen(self, tmp_path):
        arch = self._filled(tmp_path)
        arch.compact()
        arch.append(make_record(13))
        arch.close()
        reopened = MetricArchive.open(arch.path)
        assert [r.timestamp for r in reopened.records()] == [
            float(i) for i in range(1, 14)]

    def test_closed_archive_refuses_writes(self, tmp_path):
        arch = self._filled(tmp_path, n=2)
        arch.close()
        with pytest.raises(ArchiveError):
            arch.append(make_record(3))
        with pytest.raises(ArchiveError):
            arch.retain(max_volumes=0)
        arch.close()  # idempotent

    def test_empty_tail_not_sealed(self, tmp_path):
        arch = MetricArchive.create(str(tmp_path / "arch"))
        arch.rotate()
        arch.close()
        assert arch.volumes == []


class TestIndexDurability:
    def test_index_is_valid_json_after_every_rotate(self, tmp_path):
        arch = MetricArchive.create(str(tmp_path / "arch"),
                                    volume_records=2)
        for i in range(1, 7):
            arch.append(make_record(i))
            with open(os.path.join(arch.path, "index.json")) as fh:
                index = json.load(fh)
            assert index["format"] == 1
        arch.close()

    def test_no_tmp_files_left_behind(self, tmp_path):
        arch = MetricArchive.create(str(tmp_path / "arch"),
                                    volume_records=2)
        for i in range(1, 9):
            arch.append(make_record(i))
        arch.compact()
        arch.close()
        leftovers = [n for n in os.listdir(arch.path)
                     if n.endswith(".tmp")]
        assert leftovers == []


class TestRatesFromRecords:
    def test_non_increasing_timestamps_rejected(self):
        records = [make_record(2), make_record(2)]
        with pytest.raises(PCPError):
            rates_from_records(records, METRIC, "cpu87")

    def test_missing_instance_skipped(self):
        records = [make_record(1),
                   ArchiveRecord(timestamp=2.0, values={}),
                   make_record(3)]
        rates = rates_from_records(records, METRIC, "cpu87")
        assert rates == [(3.0, pytest.approx(1000.0))]
