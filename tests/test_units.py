"""Unit tests for byte-size arithmetic helpers."""

import pytest

from repro.units import (
    DOUBLE,
    DOUBLE_COMPLEX,
    GIB,
    KIB,
    MIB,
    POWER9_GRANULE,
    POWER9_LINE,
    ceil_div,
    fmt_bytes,
    parse_size,
    round_up,
    transactions,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(64, 64) == 1

    def test_rounds_up(self):
        assert ceil_div(65, 64) == 2

    def test_zero(self):
        assert ceil_div(0, 64) == 0

    def test_negative_dividend_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 64)

    def test_nonpositive_divisor_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(10, 0)


class TestRoundUp:
    def test_already_aligned(self):
        assert round_up(128) == 128

    def test_rounds_to_granule(self):
        assert round_up(1) == POWER9_GRANULE
        assert round_up(65) == 128

    def test_custom_granule(self):
        assert round_up(100, granule=32) == 128

    def test_zero(self):
        assert round_up(0) == 0


class TestTransactions:
    def test_one_element_costs_one_transaction(self):
        assert transactions(DOUBLE) == 1

    def test_full_line_is_two_granules(self):
        assert transactions(POWER9_LINE) == 2

    def test_paper_conversion(self):
        # "expected memory traffic multiplied by 8 and divided by 64":
        # N elements of 8 bytes -> N*8/64 transactions when aligned.
        n = 4096
        assert transactions(n * DOUBLE) == n * DOUBLE // 64


class TestConstants:
    def test_element_sizes(self):
        assert DOUBLE == 8
        assert DOUBLE_COMPLEX == 16

    def test_power9_geometry(self):
        # Half-line memory fetches: granule is half the 128 B line.
        assert POWER9_LINE == 2 * POWER9_GRANULE

    def test_binary_prefixes(self):
        assert KIB == 1024
        assert MIB == 1024 ** 2
        assert GIB == 1024 ** 3


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512.00 B"

    def test_mib(self):
        assert fmt_bytes(5 * MIB) == "5.00 MiB"

    def test_large(self):
        assert "TiB" in fmt_bytes(3 * 1024 * GIB)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("64", 64),
        ("5MiB", 5 * MIB),
        ("2 KiB", 2 * KIB),
        ("1GiB", GIB),
        ("1kB", 1000),
        ("1.5MiB", int(1.5 * MIB)),
    ])
    def test_round_trips(self, text, expected):
        assert parse_size(text) == expected
