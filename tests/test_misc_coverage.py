"""Coverage for small surfaces: errors, KernelModel defaults, CLI --all,
GPU power edge cases, report traffic rows."""

import pytest

from repro import errors
from repro.engine.analytic import CacheContext
from repro.engine.trace import KernelModel
from repro.machine.cache import TrafficCounters


class TestErrorHierarchy:
    def test_papi_codes_match_papi_h(self):
        assert errors.PapiNoEvent.code == -7
        assert errors.PapiPermissionDenied.code == -8
        assert errors.PapiNotRunning.code == -9
        assert errors.PapiIsRunning.code == -10
        assert errors.PapiNoComponent.code == -20

    def test_privilege_error_is_permission_error(self):
        # Catchable by generic OS-style handlers.
        assert issubclass(errors.PrivilegeError, PermissionError)
        assert issubclass(errors.PrivilegeError, errors.ReproError)

    def test_default_messages(self):
        exc = errors.PapiNoEvent()
        assert "does not exist" in str(exc)

    def test_all_errors_derive_from_repro_error(self):
        for name in ("ConfigurationError", "SimulationError", "PCPError",
                     "PMNSError", "MPIError", "GPUError", "PapiError"):
            assert issubclass(getattr(errors, name), errors.ReproError)


class TestKernelModelDefaults:
    class Minimal(KernelModel):
        name = "minimal"

        def streams(self):
            return []

        def traffic(self, ctx, prefetch=None):
            return TrafficCounters()

        def flops(self):
            return 0.0

    def test_compute_not_implemented(self):
        with pytest.raises(NotImplementedError):
            self.Minimal().compute()

    def test_exact_accesses_not_implemented(self):
        with pytest.raises(NotImplementedError):
            self.Minimal().exact_accesses()

    def test_expected_traffic_defaults_to_none(self):
        assert self.Minimal().expected_traffic() is None

    def test_describe(self):
        assert "minimal" in self.Minimal().describe()

    def test_default_bandwidth_efficiency(self):
        assert self.Minimal().bandwidth_efficiency() == 1.0

    def test_footprint_from_streams(self):
        from repro.engine.stream import StreamDecl

        class TwoArrays(self.Minimal):
            def streams(self):
                return [
                    StreamDecl("a", False, 8, 8, 8, 64),
                    StreamDecl("a", False, 8, 8, 8, 128),  # max wins
                    StreamDecl("b", True, 8, 8, 8, 256),
                ]

        assert TwoArrays().footprint_bytes() == 128 + 256


class TestCLIAll:
    def test_runs_every_experiment(self, capsys):
        from repro.cli import main

        assert main(["--all"]) == 0
        out = capsys.readouterr().out
        for fragment in ("[table1]", "[fig2]", "[fig12]", "[ext-spmv]"):
            assert fragment in out


class TestGpuPowerEdges:
    def test_overlapping_intervals_both_counted(self):
        from repro.gpu.power import PowerLog

        log = PowerLog(40.0)
        log.add_interval(0.0, 2.0, 200.0)
        log.add_interval(1.0, 3.0, 200.0)
        # Overlap double-counts the excess (two engines busy): energy =
        # idle*3 + 160*2 + 160*2.
        assert log.energy_joules(0.0, 3.0) == pytest.approx(
            40 * 3 + 160 * 2 + 160 * 2)

    def test_zero_length_interval_ignored(self):
        from repro.gpu.power import PowerLog

        log = PowerLog(40.0)
        log.add_interval(1.0, 1.0, 300.0)
        assert log.power_at(1.0) == 40.0


class TestTrafficCountersEdges:
    def test_scaled_rounds(self):
        assert tuple(TrafficCounters(3, 3).scaled(0.5)) in ((2, 2), (2, 2))

    def test_zero_total(self):
        assert TrafficCounters().total_bytes == 0


class TestCacheContextDefaults:
    def test_defaults_are_power9(self):
        ctx = CacheContext(capacity_bytes=1)
        assert ctx.granule == 64
        assert ctx.line_bytes == 128
        assert ctx.spill_extra_fraction == 0.0
