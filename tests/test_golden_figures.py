"""Golden-figure regression: fig2-fig5 reproduce frozen fixtures.

The fixtures under ``tests/golden/`` were generated from the seed
implementation *before* the concurrent PCP service layer landed. They
must keep passing bit-exactly: the daemon-mediated measurement path may
gain batching, caching and fault tolerance, but it must not perturb the
traffic the paper's figures report.
"""

import json
import pathlib

import pytest

from repro.experiments import run_experiment

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
FIGURES = ("fig2", "fig3", "fig4", "fig5")


def _plain(cell):
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)


@pytest.mark.parametrize("figure_id", FIGURES)
def test_figure_matches_golden(figure_id):
    with open(GOLDEN_DIR / f"{figure_id}.json") as fh:
        golden = json.load(fh)
    result = run_experiment(figure_id)
    assert result.experiment_id == golden["experiment_id"]
    assert result.title == golden["title"]
    assert list(result.headers) == golden["headers"]
    rows = [[_plain(c) for c in row] for row in result.rows]
    assert len(rows) == len(golden["rows"])
    for i, (got, want) in enumerate(zip(rows, golden["rows"])):
        assert got == want, (
            f"{figure_id} row {i} diverged from the frozen seed "
            f"measurement:\n got: {got}\nwant: {want}")


def test_fixtures_cover_all_figures():
    present = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))
    assert present == sorted(FIGURES)
