"""Exact sectored cache simulator: hits, misses, traffic accounting."""

import pytest

from repro.errors import SimulationError
from repro.machine.cache import CacheSim, TrafficCounters
from repro.machine.config import CacheConfig


def small_cache(capacity=64 * 1024, line=128, granule=64, assoc=4):
    return CacheSim(CacheConfig(capacity_bytes=capacity, line_bytes=line,
                                granule_bytes=granule, associativity=assoc))


class TestTrafficCounters:
    def test_add(self):
        a = TrafficCounters(10, 20)
        a.add(TrafficCounters(1, 2))
        assert (a.read_bytes, a.write_bytes) == (11, 22)

    def test_scaled(self):
        assert tuple(TrafficCounters(10, 20).scaled(2.5)) == (25, 50)

    def test_total(self):
        assert TrafficCounters(3, 4).total_bytes == 7

    def test_iter_order(self):
        r, w = TrafficCounters(1, 2)
        assert (r, w) == (1, 2)


class TestReads:
    def test_cold_read_fetches_one_granule(self):
        c = small_cache()
        c.access(0, 8, is_write=False)
        assert c.traffic.read_bytes == 64
        assert c.stats_misses == 1

    def test_second_read_same_sector_hits(self):
        c = small_cache()
        c.access(0, 8, is_write=False)
        c.access(8, 8, is_write=False)
        assert c.traffic.read_bytes == 64
        assert c.stats_hits == 1

    def test_other_sector_of_line_is_separate_fetch(self):
        # Sectored cache: the other 64 B half of the line is not valid.
        c = small_cache()
        c.access(0, 8, is_write=False)
        c.access(64, 8, is_write=False)
        assert c.traffic.read_bytes == 128

    def test_sequential_stream_traffic_equals_footprint(self):
        c = small_cache()
        n = 512
        c.touch_array(0, n, 8, 8, is_write=False)
        assert c.traffic.read_bytes == n * 8

    def test_access_spanning_sectors_splits(self):
        c = small_cache()
        c.access(60, 8, is_write=False)  # crosses the 64 B boundary
        assert c.traffic.read_bytes == 128

    def test_zero_size_access_rejected(self):
        c = small_cache()
        with pytest.raises(SimulationError):
            c.access(0, 0, is_write=False)


class TestWriteAllocate:
    def test_write_miss_costs_read_for_ownership(self):
        c = small_cache()
        c.access(0, 8, is_write=True)
        assert c.traffic.read_bytes == 64
        assert c.traffic.write_bytes == 0  # not written back yet

    def test_flush_writes_back_dirty_sectors(self):
        c = small_cache()
        c.access(0, 8, is_write=True)
        c.flush()
        assert c.traffic.write_bytes == 64

    def test_clean_lines_not_written_back(self):
        c = small_cache()
        c.access(0, 8, is_write=False)
        c.flush()
        assert c.traffic.write_bytes == 0

    def test_eviction_writes_back_dirty(self):
        c = small_cache(capacity=2048, assoc=2, line=128)  # 8 sets
        # Fill one set beyond associativity with dirty lines: set stride
        # is n_sets * line = 1024 bytes.
        for i in range(3):
            c.access(i * 1024, 8, is_write=True)
        assert c.traffic.write_bytes == 64  # one eviction so far


class TestBypassStores:
    def test_full_sector_gathered_into_one_write(self):
        c = small_cache()
        for i in range(8):  # 8 x 8B = one 64 B sector
            c.access(i * 8, 8, is_write=True, bypass=True)
        assert c.traffic.write_bytes == 64
        assert c.traffic.read_bytes == 0

    def test_bypass_never_reads(self):
        c = small_cache()
        c.touch_array(0, 1000, 8, 8, is_write=True, bypass=True)
        c.flush()
        assert c.traffic.read_bytes == 0
        assert c.traffic.write_bytes == 1000 * 8

    def test_wcb_overflow_drains(self):
        c = small_cache()
        # 100 partial sectors, widely spread: must not grow unbounded.
        for i in range(100):
            c.access(i * 4096, 8, is_write=True, bypass=True)
        c.flush()
        assert c.traffic.write_bytes == 100 * 64
        assert len(c._wcb) == 0


class TestLRU:
    def test_lru_victim_is_least_recent(self):
        c = small_cache(capacity=1024, assoc=2, line=128)  # 4 sets
        set_stride = 4 * 128
        a, b, d = 0, set_stride, 2 * set_stride  # same set
        c.access(a, 8, False)
        c.access(b, 8, False)
        c.access(a, 8, False)   # refresh a
        c.access(d, 8, False)   # evicts b
        c.access(a, 8, False)   # still resident
        assert c.traffic.read_bytes == 3 * 64

    def test_capacity_thrash_refetches(self):
        c = small_cache(capacity=4096)
        c.touch_array(0, 128, 8, 64, is_write=False)  # 8 KiB footprint
        before = c.traffic.read_bytes
        c.touch_array(0, 128, 8, 64, is_write=False)  # re-pass misses
        assert c.traffic.read_bytes > before


class TestLifecycle:
    def test_invalidate_drops_without_traffic(self):
        c = small_cache()
        c.access(0, 8, is_write=True)
        c.invalidate()
        assert c.traffic.write_bytes == 0
        assert c.resident_bytes() == 0

    def test_resident_and_dirty_bytes(self):
        c = small_cache()
        c.access(0, 8, is_write=True)
        c.access(64, 8, is_write=False)
        assert c.resident_bytes() == 128
        assert c.dirty_bytes() == 64

    def test_reset_traffic_returns_and_zeroes(self):
        c = small_cache()
        c.access(0, 8, False)
        out = c.reset_traffic()
        assert out.read_bytes == 64
        assert c.traffic.read_bytes == 0
