"""Noise models: determinism, scaling, and repetition amortisation."""

import pytest

from repro.machine.cache import TrafficCounters
from repro.noise import QUIET, NoiseConfig, NoiseModel


class TestQuiet:
    def test_quiet_is_completely_silent(self):
        model = NoiseModel(QUIET, seed=1)
        assert model.background_traffic(10.0).total_bytes == 0
        assert model.window_fixed_traffic().total_bytes == 0
        assert model.per_rep_traffic().total_bytes == 0
        assert model.capture_factor(1e-9) == 1.0

    def test_quiet_perturb_is_identity(self):
        model = NoiseModel(QUIET, seed=1)
        true = TrafficCounters(1000, 500)
        out = model.perturb(true, runtime_seconds=1e-6, via_pcp=True)
        assert tuple(out) == (1000, 500)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = NoiseModel(seed=42)
        b = NoiseModel(seed=42)
        assert tuple(a.background_traffic(1.0)) == \
            tuple(b.background_traffic(1.0))

    def test_different_seeds_differ(self):
        a = NoiseModel(seed=1)
        b = NoiseModel(seed=2)
        assert tuple(a.background_traffic(1.0)) != \
            tuple(b.background_traffic(1.0))


class TestBackground:
    def test_scales_with_window(self):
        model = NoiseModel(NoiseConfig(background_sigma=0.0), seed=1)
        short = model.background_traffic(0.1)
        long = model.background_traffic(1.0)
        assert long.read_bytes == pytest.approx(10 * short.read_bytes,
                                                rel=0.01)

    def test_zero_window(self):
        assert NoiseModel(seed=1).background_traffic(0.0).total_bytes == 0

    def test_mean_one_jitter(self):
        # Lognormal jitter is mean-one: long-run average tracks the rate.
        cfg = NoiseConfig()
        model = NoiseModel(cfg, seed=7)
        n = 3000
        total = sum(model.background_traffic(1.0).read_bytes
                    for _ in range(n)) / n
        assert total == pytest.approx(cfg.background_read_rate, rel=0.1)


class TestCaptureJitter:
    def test_shrinks_with_runtime(self):
        cfg = NoiseConfig()
        short_sd = _factor_sd(cfg, runtime=1e-6)
        long_sd = _factor_sd(cfg, runtime=1.0)
        assert long_sd < short_sd / 10

    def test_never_negative(self):
        model = NoiseModel(seed=3)
        assert all(model.capture_factor(1e-9) >= 0.0 for _ in range(2000))


def _factor_sd(cfg, runtime, n=2000):
    model = NoiseModel(cfg, seed=5)
    samples = [model.capture_factor(runtime) for _ in range(n)]
    mean = sum(samples) / n
    return (sum((s - mean) ** 2 for s in samples) / n) ** 0.5


class TestPerturb:
    def test_repetitions_amortise_window_noise(self):
        cfg = NoiseConfig(capture_sigma0=0.0, background_sigma=0.0,
                          per_rep_read_bytes=0.0, per_rep_write_bytes=0.0)
        true = TrafficCounters(10_000, 5_000)
        single = NoiseModel(cfg, seed=1).perturb(true, 1e-6, via_pcp=True,
                                                 repetitions=1)
        many = NoiseModel(cfg, seed=1).perturb(true, 1e-6, via_pcp=True,
                                               repetitions=500)
        err_single = single.read_bytes - true.read_bytes
        err_many = many.read_bytes - true.read_bytes
        assert err_many < err_single / 10

    def test_per_rep_overhead_not_amortised(self):
        cfg = NoiseConfig(capture_sigma0=0.0, background_sigma=0.0,
                          background_read_rate=0.0,
                          background_write_rate=0.0,
                          fixed_read_bytes=0.0, fixed_write_bytes=0.0,
                          per_rep_read_bytes=1000.0,
                          per_rep_write_bytes=2000.0)
        true = TrafficCounters(0, 0)
        out = NoiseModel(cfg, seed=1).perturb(true, 1e-6, via_pcp=False,
                                              repetitions=100)
        assert out.read_bytes == pytest.approx(1000, rel=0.01)
        assert out.write_bytes == pytest.approx(2000, rel=0.01)

    def test_pcp_window_longer_than_direct(self):
        cfg = NoiseConfig(capture_sigma0=0.0, background_sigma=0.0,
                          fixed_read_bytes=0.0, fixed_write_bytes=0.0,
                          per_rep_read_bytes=0.0, per_rep_write_bytes=0.0)
        true = TrafficCounters(0, 0)
        pcp = NoiseModel(cfg, seed=1).perturb(true, 0.0, via_pcp=True)
        direct = NoiseModel(cfg, seed=1).perturb(true, 0.0, via_pcp=False)
        assert pcp.read_bytes > direct.read_bytes

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            NoiseModel(seed=1).perturb(TrafficCounters(), 1.0, True,
                                       repetitions=0)


class TestWindowOverhead:
    def test_config_selection(self):
        cfg = NoiseConfig()
        assert cfg.window_overhead(True) == cfg.window_overhead_pcp
        assert cfg.window_overhead(False) == cfg.window_overhead_direct
        assert cfg.window_overhead_pcp > cfg.window_overhead_direct
