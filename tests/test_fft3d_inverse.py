"""Inverse distributed 3D-FFT (round trips and Parseval)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fft3d.decomp import gather, scatter
from repro.fft3d.fft import Distributed3DFFT
from repro.mpi.grid import ProcessorGrid


def random_cube(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n, n)) + 1j * rng.standard_normal(
        (n, n, n))


class TestRoundTrip:
    @pytest.mark.parametrize("r,c,n", [(2, 4, 16), (2, 2, 8), (4, 2, 16),
                                       (1, 1, 8)])
    def test_backward_inverts_forward(self, r, c, n):
        grid = ProcessorGrid(r, c)
        fft = Distributed3DFFT(n, grid)
        a = random_cube(n)
        blocks = scatter(a, grid)
        recovered = gather(fft.backward_blocks(fft.forward_blocks(blocks)),
                           grid)
        assert np.allclose(recovered, a, atol=1e-12)

    def test_backward_matches_numpy_ifftn(self):
        grid = ProcessorGrid(2, 2)
        n = 8
        fft = Distributed3DFFT(n, grid)
        a = random_cube(n, seed=3)
        # Feed Â distributed the way forward_blocks outputs it.
        ahat = np.fft.fftn(a)
        p = fft.block.planes
        r_ = fft.block.rows
        blocks = []
        for rank in range(grid.size):
            row, col = grid.coords_of(rank)
            blocks.append(np.ascontiguousarray(
                ahat[:, row * p:(row + 1) * p, col * r_:(col + 1) * r_]))
        recovered = gather(fft.backward_blocks(blocks), grid)
        assert np.allclose(recovered, a, atol=1e-12)

    def test_parseval(self):
        grid = ProcessorGrid(2, 4)
        n = 16
        fft = Distributed3DFFT(n, grid)
        a = random_cube(n, seed=5)
        ahat = fft.forward_global(a)
        # ||Â||² = N³ ||a||² for the unnormalised forward transform.
        assert np.sum(np.abs(ahat) ** 2) == pytest.approx(
            n ** 3 * np.sum(np.abs(a) ** 2), rel=1e-10)

    def test_block_count_validated(self):
        fft = Distributed3DFFT(8, ProcessorGrid(2, 2))
        with pytest.raises(ConfigurationError):
            fft.backward_blocks([np.zeros((8, 4, 4), dtype=complex)])
