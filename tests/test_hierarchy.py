"""L3 slice topology: re-appropriation and spillover (Figs 2-4 logic)."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.config import SUMMIT, TELLICO
from repro.machine.hierarchy import L3Topology
from repro.units import MIB


@pytest.fixture
def summit_topology():
    return L3Topology(SUMMIT.socket, SUMMIT.usable_cores_per_socket)


class TestReappropriation:
    def test_single_core_gets_whole_socket(self, summit_topology):
        # "giving the active core 110 MB worth of cache"
        assert summit_topology.effective_capacity(1) == 110 * MIB

    def test_all_cores_get_local_share_only(self, summit_topology):
        # "each core can use up to 5MB of L3 cache"
        share = summit_topology.share_for(21)
        assert share.local_bytes == 5 * MIB
        assert share.remote_bytes == 0

    def test_capacity_monotonically_decreases(self, summit_topology):
        caps = [summit_topology.effective_capacity(n)
                for n in range(1, 22)]
        assert all(a >= b for a, b in zip(caps, caps[1:]))

    def test_tellico_single_core(self):
        topo = L3Topology(TELLICO.socket, 16)
        assert topo.effective_capacity(1) == 80 * MIB

    def test_invalid_core_counts(self, summit_topology):
        with pytest.raises(ConfigurationError):
            summit_topology.share_for(0)
        with pytest.raises(ConfigurationError):
            L3Topology(SUMMIT.socket, 0)


class TestSpillover:
    def test_no_spill_when_fits_locally(self, summit_topology):
        assert summit_topology.spill_extra_read_fraction(4 * MIB, 1) == 0.0

    def test_no_spill_when_all_cores_active(self, summit_topology):
        # With every slice in use there is nothing to re-appropriate.
        assert summit_topology.spill_extra_read_fraction(50 * MIB, 21) == 0.0

    def test_spill_grows_with_footprint(self, summit_topology):
        small = summit_topology.spill_extra_read_fraction(8 * MIB, 1)
        large = summit_topology.spill_extra_read_fraction(60 * MIB, 1)
        assert 0.0 < small < large

    def test_spill_bounded_by_miss_factor(self, summit_topology):
        frac = summit_topology.spill_extra_read_fraction(200 * MIB, 1)
        assert frac <= L3Topology.REMOTE_SLICE_MISS_FACTOR

    def test_spill_fraction_is_small_per_pass(self, summit_topology):
        # The divergence is gradual: per-pass extra traffic is well
        # below 1% of the footprint.
        frac = summit_topology.spill_extra_read_fraction(50 * MIB, 1)
        assert frac < 0.01
