"""Determinism guarantees of the RNG plumbing."""

import numpy as np

from repro.rng import DEFAULT_SEED, derive_seed, make_rng, substream


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).random(10)
        b = make_rng(7).random(10)
        assert np.array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = make_rng(None).random(5)
        b = make_rng(DEFAULT_SEED).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_base_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_none_equals_default(self):
        assert derive_seed(None, "x") == derive_seed(DEFAULT_SEED, "x")

    def test_no_label_concatenation_ambiguity(self):
        # ("ab",) must differ from ("a", "b"): separators are hashed in.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")


class TestSubstream:
    def test_independent_streams(self):
        a = substream(5, "alpha").random(8)
        b = substream(5, "beta").random(8)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = substream(5, "alpha", "x").random(8)
        b = substream(5, "alpha", "x").random(8)
        assert np.array_equal(a, b)
