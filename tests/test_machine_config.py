"""Machine-description invariants (Summit/Tellico/Skylake geometry)."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.config import (
    SKYLAKE,
    SUMMIT,
    TELLICO,
    CacheConfig,
    GPUConfig,
    MachineConfig,
    PrefetchConfig,
    SocketConfig,
    get_machine,
)
from repro.units import MIB


class TestCacheConfig:
    def test_power9_defaults(self):
        cfg = CacheConfig(capacity_bytes=10 * MIB)
        assert cfg.line_bytes == 128
        assert cfg.granule_bytes == 64
        assert cfg.n_lines == 10 * MIB // 128
        assert cfg.n_sets * cfg.associativity == cfg.n_lines

    def test_rejects_bad_line_granule(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(capacity_bytes=MIB, line_bytes=96, granule_bytes=64)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(capacity_bytes=0)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(capacity_bytes=1000, associativity=16)


class TestSummit:
    def test_paper_core_counts(self):
        # "Although there are 22 cores per socket, one of these cannot
        # be accessed by the user."
        assert SUMMIT.socket.n_cores == 22
        assert SUMMIT.usable_cores_per_socket == 21
        assert SUMMIT.n_sockets == 2

    def test_l3_geometry(self):
        # "11 core pairs ... a total of 110 MB of L3 cache. Each core
        # pair is delegated a 10MB cache slice."
        assert SUMMIT.socket.n_core_pairs == 11
        assert SUMMIT.socket.l3_slice.capacity_bytes == 10 * MIB
        assert SUMMIT.socket.l3_total_bytes == 110 * MIB
        assert SUMMIT.socket.l3_per_core_bytes == 5 * MIB

    def test_unprivileged_user(self):
        assert not SUMMIT.user_privileged

    def test_devices(self):
        assert SUMMIT.gpus_per_socket == 3
        assert SUMMIT.gpu.name.startswith("Tesla_V100")
        assert len(SUMMIT.nics) == 2

    def test_memory_channels(self):
        assert SUMMIT.socket.n_memory_channels == 8


class TestTellico:
    def test_sixteen_core_sockets(self):
        assert TELLICO.socket.n_cores == 16
        assert TELLICO.n_sockets == 2

    def test_privileged_user(self):
        assert TELLICO.user_privileged

    def test_same_arch_as_summit(self):
        # "an in-house machine with a very similar architecture"
        assert TELLICO.arch == SUMMIT.arch
        assert TELLICO.socket.l3_per_core_bytes == \
            SUMMIT.socket.l3_per_core_bytes


class TestSkylake:
    def test_full_line_fetches(self):
        # Intel fetches whole 64 B lines (granule == line).
        assert SKYLAKE.socket.l3_slice.line_bytes == 64
        assert SKYLAKE.socket.l3_slice.granule_bytes == 64


class TestValidation:
    def test_get_machine(self):
        assert get_machine("summit") is SUMMIT
        assert get_machine("TELLICO") is TELLICO

    def test_get_machine_unknown(self):
        with pytest.raises(ConfigurationError):
            get_machine("perlmutter")

    def test_socket_core_pair_divisibility(self):
        with pytest.raises(ConfigurationError):
            SocketConfig(n_cores=7, cores_per_pair=2)

    def test_machine_needs_gpu_config_for_gpus(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(name="x", arch="y", n_sockets=1,
                          socket=SocketConfig(n_cores=4),
                          gpus_per_socket=2, gpu=None)

    def test_cannot_reserve_all_cores(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(name="x", arch="y", n_sockets=1,
                          socket=SocketConfig(n_cores=4),
                          reserved_cores_per_socket=4)

    def test_prefetch_defaults(self):
        assert PrefetchConfig().detect_threshold == 4

    def test_gpu_defaults(self):
        gpu = GPUConfig()
        assert gpu.peak_power_w > gpu.idle_power_w
