"""Property and fault-injection tests for the on-disk trace store.

DESIGN.md §6.2: a stored trace must round-trip byte-identically
through the columnar format, a corrupt entry (truncated, bit-flipped,
or stale-manifest) must never be returned as data, eviction is
LRU-by-bytes, concurrent writers of one entry converge on a single
valid copy, and a sharded simulation killed mid-run resumes from its
per-shard checkpoints to identical counters.
"""

import json
import multiprocessing
import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.exact import ExactEngine, ShardedExactEngine
from repro.engine.loopnest import AffineAccess, LoopNest
from repro.engine.stream import BatchTrace
from repro.engine.trace import KernelModel
from repro.engine.tracecache import TraceCache
from repro.engine.tracestore import (
    EMITTER_VERSION,
    MANIFEST_NAME,
    StoredTrace,
    TraceStore,
    kernel_fingerprint,
)
from repro.errors import TraceCorruptionError, TraceStoreError
from repro.kernels.blas import Gemm
from repro.kernels.stream import StreamKernel
from repro.machine.config import CacheConfig

SMALL = CacheConfig(capacity_bytes=64 * 1024)


class SyntheticKernel(KernelModel):
    """Test fixture: a kernel whose exact trace is handed in directly."""

    def __init__(self, name, trace, blocks=None):
        self.name = name
        self._trace = trace
        self._blocks = blocks

    def streams(self):
        return []

    def traffic(self, ctx, prefetch=None):
        raise NotImplementedError

    def flops(self):
        return 0.0

    def exact_trace(self):
        return self._trace

    def exact_trace_blocks(self):
        yield from (self._blocks if self._blocks is not None
                    else [self._trace])

    def trace_key(self):
        t = self._trace
        return {"name": self.name, "rows": len(t),
                "digest": [int(t.addr.sum()), int(t.size.sum())]}


def assert_traces_equal(got, want):
    assert got.streams == want.streams
    assert np.array_equal(got.addr, want.addr)
    assert np.array_equal(got.size, want.size)
    assert np.array_equal(got.stream_id, want.stream_id)
    assert np.array_equal(got.is_write, want.is_write)


# ----------------------------------------------------------------------
# hypothesis: round-trip is byte-identical, any bit flip is rejected
# ----------------------------------------------------------------------
@st.composite
def traces(draw):
    n_streams = draw(st.integers(1, 4))
    n = draw(st.integers(1, 400))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    return BatchTrace(
        streams=tuple(f"s{i}" for i in range(n_streams)),
        stream_id=rng.integers(0, n_streams, n).astype(np.int16),
        addr=rng.integers(0, 1 << 44, n).astype(np.int64),
        size=rng.integers(1, 300, n).astype(np.int32),
        is_write=rng.random(n) < 0.5,
    )


def _split_blocks(trace, n_blocks):
    """Row-partition a trace into ``n_blocks`` contiguous blocks."""
    edges = np.linspace(0, len(trace), n_blocks + 1).astype(int)
    return [
        BatchTrace(trace.streams, trace.stream_id[a:b], trace.addr[a:b],
                   trace.size[a:b], trace.is_write[a:b])
        for a, b in zip(edges[:-1], edges[1:])
    ]


class TestRoundTrip:
    @given(trace=traces(), n_blocks=st.integers(1, 5),
           chunk_rows=st.integers(3, 64))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_byte_identical(self, trace, n_blocks, chunk_rows):
        root = tempfile.mkdtemp(prefix="repro-ts-")
        try:
            kernel = SyntheticKernel(
                "synth", trace, _split_blocks(trace, n_blocks))
            store = TraceStore(root, verify="full")
            store.put(kernel, kernel.exact_trace_blocks())

            entry = TraceStore(root, verify="full").get(kernel)
            assert entry is not None and entry.rows == len(trace)
            assert_traces_equal(entry.load(), trace)

            chunks = list(entry.iter_chunks(chunk_rows))
            assert sum(len(c) for c in chunks) == len(trace)
            assert all(c.streams == trace.streams for c in chunks)
            assert_traces_equal(
                BatchTrace(trace.streams,
                           np.concatenate([c.stream_id for c in chunks]),
                           np.concatenate([c.addr for c in chunks]),
                           np.concatenate([c.size for c in chunks]),
                           np.concatenate([c.is_write for c in chunks])),
                trace)
            entry.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @given(trace=traces(), column=st.sampled_from(
        ["addr", "size", "stream_id", "is_write"]),
        pos=st.floats(0.0, 1.0), bit=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_any_bit_flip_is_detected(self, trace, column, pos, bit):
        root = tempfile.mkdtemp(prefix="repro-ts-")
        try:
            kernel = SyntheticKernel("synth", trace)
            store = TraceStore(root, verify="full")
            store.put(kernel, kernel.exact_trace_blocks())
            fpath = store.path_for(kernel) / f"{column}.bin"
            raw = bytearray(fpath.read_bytes())
            offset = min(int(pos * len(raw)), len(raw) - 1)
            raw[offset] ^= 1 << bit
            fpath.write_bytes(raw)
            with pytest.raises(TraceCorruptionError):
                store.get(kernel)
        finally:
            shutil.rmtree(root, ignore_errors=True)

    def test_empty_trace_round_trips(self, tmp_path):
        trace = BatchTrace(("a",), np.empty(0, np.int16),
                           np.empty(0, np.int64), np.empty(0, np.int32),
                           np.empty(0, bool))
        store = TraceStore(tmp_path, verify="full")
        store.put(SyntheticKernel("empty", trace), [trace])
        entry = store.get(SyntheticKernel("empty", trace))
        assert entry.rows == 0
        assert len(list(entry.iter_chunks(8))) == 0
        assert_traces_equal(entry.load(), trace)


# ----------------------------------------------------------------------
# corruption: never returned as data, always quarantined + regenerated
# ----------------------------------------------------------------------
def _corrupt_truncate(path):
    f = path / "addr.bin"
    f.write_bytes(f.read_bytes()[:-1])


def _corrupt_bitflip(path):
    f = path / "size.bin"
    raw = bytearray(f.read_bytes())
    raw[len(raw) // 2] ^= 0x40
    f.write_bytes(raw)


def _corrupt_stale_emitter(path):
    m = json.loads((path / MANIFEST_NAME).read_text())
    m["emitter_version"] = EMITTER_VERSION + 1
    (path / MANIFEST_NAME).write_text(json.dumps(m))


def _corrupt_row_count(path):
    m = json.loads((path / MANIFEST_NAME).read_text())
    m["rows"] += 1
    (path / MANIFEST_NAME).write_text(json.dumps(m))


def _corrupt_dtype(path):
    m = json.loads((path / MANIFEST_NAME).read_text())
    m["columns"]["addr"]["dtype"] = "<i4"
    (path / MANIFEST_NAME).write_text(json.dumps(m))


def _corrupt_manifest_garbage(path):
    (path / MANIFEST_NAME).write_bytes(b"\x00not json{")


def _corrupt_missing_column(path):
    (path / "is_write.bin").unlink()


CORRUPTIONS = [
    _corrupt_truncate,
    _corrupt_bitflip,
    _corrupt_stale_emitter,
    _corrupt_row_count,
    _corrupt_dtype,
    _corrupt_manifest_garbage,
    _corrupt_missing_column,
]


class TestCorruption:
    @pytest.mark.parametrize("corrupt", CORRUPTIONS,
                             ids=lambda f: f.__name__[9:])
    def test_rejected_then_regenerated(self, corrupt, tmp_path):
        kernel = Gemm(8)
        pristine = kernel.exact_trace()
        store = TraceStore(tmp_path, verify="full")
        store.get_or_create(kernel)
        corrupt(store.path_for(kernel))

        with pytest.raises(TraceStoreError):
            store.get(kernel)
        report = store.verify_all()
        assert any(err is not None for err in report.values())

        # get_or_create quarantines the bad entry and rebuilds it; the
        # caller only ever sees pristine data.
        entry = store.get_or_create(kernel)
        assert_traces_equal(entry.load(), pristine)
        entry.close()
        assert all(e is None for e in store.verify_all().values())

    def test_meta_verify_skips_crc_but_not_shape(self, tmp_path):
        kernel = Gemm(8)
        store = TraceStore(tmp_path, verify="meta")
        store.get_or_create(kernel)
        path = store.path_for(kernel)
        _corrupt_bitflip(path)
        # Shape-preserving bit rot passes the cheap meta check...
        assert store.get(kernel) is not None
        # ...but never a full verify.
        with pytest.raises(TraceCorruptionError):
            StoredTrace.open(path, verify="full")
        _corrupt_truncate(path)
        with pytest.raises(TraceCorruptionError):
            store.get(kernel)


# ----------------------------------------------------------------------
# eviction: LRU by bytes
# ----------------------------------------------------------------------
class TestEviction:
    def _fill(self, root, names):
        store = TraceStore(root, verify="meta")
        kernels = {}
        for i, name in enumerate(names):
            rng = np.random.default_rng(i)
            n = 1000
            trace = BatchTrace(("a",),
                               np.zeros(n, np.int16),
                               rng.integers(0, 1 << 30, n),
                               np.full(n, 8, np.int32),
                               np.zeros(n, bool))
            k = SyntheticKernel(name, trace)
            store.put(k, [trace])
            kernels[name] = k
        return store, kernels

    def test_gc_evicts_least_recently_used_first(self, tmp_path):
        store, kernels = self._fill(tmp_path, ["old", "mid", "new"])
        # Deterministic recency: manifest mtimes 100 < 200 < 300.
        for t, name in [(100, "old"), (200, "mid"), (300, "new")]:
            mpath = store.path_for(kernels[name]) / MANIFEST_NAME
            os.utime(mpath, (t, t))
        per_entry = store.entries()[0].nbytes
        evicted = store.gc(2 * per_entry)
        assert evicted == [store.key_for(kernels["old"])]
        assert store.total_bytes() <= 2 * per_entry

        # A fresh use moves "mid" to the back of the queue.
        store.get(kernels["mid"]).close()
        now = store.path_for(kernels["new"]) / MANIFEST_NAME
        os.utime(now, (400, 400))
        evicted = store.gc(per_entry)
        assert evicted == [store.key_for(kernels["new"])]

    def test_gc_keep_exempts_fresh_write(self, tmp_path):
        store, kernels = self._fill(tmp_path, ["a", "b"])
        keep = store.key_for(kernels["a"])
        evicted = store.gc(0, keep=keep)
        assert store.contains(kernels["a"])
        assert evicted == [store.key_for(kernels["b"])]

    def test_gc_clears_stale_tmp_dirs(self, tmp_path):
        store, kernels = self._fill(tmp_path, ["a"])
        writer = store.writer(kernels["a"])
        writer.append(kernels["a"].exact_trace())
        tmp_dir = writer.tmp_dir
        assert tmp_dir.is_dir()
        # Pretend the writer's process died an hour ago.
        os.utime(tmp_dir, (1, 1))
        store.gc(1 << 30)
        assert not tmp_dir.exists()
        writer.abort()


# ----------------------------------------------------------------------
# cache keying: same-named kernels with different shapes never collide
# ----------------------------------------------------------------------
def _nest(bounds):
    return LoopNest(name="same-name", bounds=bounds,
                    accesses=[AffineAccess("A", coeffs=(1,) * len(bounds))])


class TestKeying:
    def test_same_name_different_shape_distinct_fingerprints(self):
        assert kernel_fingerprint(_nest((4, 4))) != \
            kernel_fingerprint(_nest((8, 3)))
        # Same shape, fresh instances: stable.
        assert kernel_fingerprint(_nest((4, 4))) == \
            kernel_fingerprint(_nest((4, 4)))

    def test_ram_cache_does_not_alias_same_named_kernels(self):
        cache = TraceCache()
        a = cache.get(_nest((4, 4)))
        b = cache.get(_nest((8, 3)))
        assert a is not b
        assert len(a) != len(b)
        assert cache.misses == 2
        # And the hit path still works per shape.
        assert cache.get(_nest((4, 4))) is a

    def test_disk_store_does_not_alias_same_named_kernels(self, tmp_path):
        store = TraceStore(tmp_path, verify="full")
        ea = store.get_or_create(_nest((4, 4)))
        eb = store.get_or_create(_nest((8, 3)))
        assert ea.path != eb.path
        assert len(store.entries()) == 2

    def test_cache_disk_tier_round_trip(self, tmp_path):
        store = TraceStore(tmp_path, verify="full")
        kernel = Gemm(8)
        c1 = TraceCache(store=store)
        t1 = c1.get(kernel)
        assert store.contains(kernel)
        # A fresh RAM cache sharing the store loads from disk.
        c2 = TraceCache(store=store)
        t2 = c2.get(kernel)
        assert c2.stats()["disk_hits"] == 1
        assert_traces_equal(t2, t1)


# ----------------------------------------------------------------------
# concurrency: two writers of one entry converge on one valid copy
# ----------------------------------------------------------------------
def _writer_proc(root, n):
    store = TraceStore(root, verify="full")
    entry = store.get_or_create(Gemm(n))
    rows = entry.rows
    entry.close()
    return rows


class TestConcurrency:
    def test_lost_rename_race_adopts_winner(self, tmp_path):
        kernel = Gemm(8)
        store = TraceStore(tmp_path, verify="full")
        wa = store.writer(kernel)
        wb = store.writer(kernel)
        for block in kernel.exact_trace_blocks():
            wa.append(block)
            wb.append(block)
        ea = wa.commit()
        eb = wb.commit()  # loses the rename race, adopts ea's entry
        assert ea.path == eb.path
        assert len(store.entries()) == 1
        assert not any(p.name.startswith(".tmp-")
                       for p in store.root.iterdir())
        assert_traces_equal(eb.load(), kernel.exact_trace())

    def test_two_processes_same_entry(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_writer_proc,
                             args=(str(tmp_path), 12)) for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
        assert [p.exitcode for p in procs] == [0, 0]
        store = TraceStore(tmp_path, verify="full")
        assert all(e is None for e in store.verify_all().values())
        entry = store.get(Gemm(12))
        assert_traces_equal(entry.load(), Gemm(12).exact_trace())
        entry.close()


# ----------------------------------------------------------------------
# crash / resume: kill mid-run, resume from checkpoints, same counters
# ----------------------------------------------------------------------
class Boom(RuntimeError):
    pass


CRASH_KERNELS = [
    Gemm(16),                           # no bypassed stores
    StreamKernel(op="triad", n=4096),   # bypassed stores -> WCB pass
]


class TestCrashResume:
    @pytest.mark.parametrize("kernel", CRASH_KERNELS,
                             ids=lambda k: k.name)
    def test_killed_mid_run_resumes_to_identical_counters(
            self, kernel, tmp_path):
        store = TraceStore(tmp_path / "store", verify="full")
        entry = store.get_or_create(kernel)
        ref = ExactEngine(SMALL).run_nest(
            kernel.streams(), kernel.exact_trace())

        ckpt = tmp_path / "ckpt"
        eng = ShardedExactEngine(SMALL, n_shards=4, checkpoint_dir=ckpt)
        survived = []

        def die_after_two(shard):
            survived.append(shard)
            if len(survived) == 2:
                raise Boom(f"injected kill after shard {shard}")

        eng.after_shard_hook = die_after_two
        with pytest.raises(Boom):
            eng.run_nest(kernel.streams(), entry)
        assert len(survived) == 2

        resumed = ShardedExactEngine(SMALL, n_shards=4,
                                     checkpoint_dir=ckpt)
        got = resumed.run_nest(kernel.streams(), entry)
        assert resumed.shards_resumed == 2
        assert (got.read_bytes, got.write_bytes) == \
            (ref.read_bytes, ref.write_bytes)

        # A third run resumes everything and recomputes nothing.
        again = ShardedExactEngine(SMALL, n_shards=4,
                                   checkpoint_dir=ckpt)
        got2 = again.run_nest(kernel.streams(), entry)
        assert again.shards_resumed == 4
        assert (got2.read_bytes, got2.write_bytes) == \
            (ref.read_bytes, ref.write_bytes)
        entry.close()

    def test_checkpoints_keyed_by_run_configuration(self, tmp_path):
        kernel = Gemm(16)
        store = TraceStore(tmp_path / "store", verify="full")
        entry = store.get_or_create(kernel)
        ckpt = tmp_path / "ckpt"
        first = ShardedExactEngine(SMALL, n_shards=4,
                                   checkpoint_dir=ckpt)
        first.run_nest(kernel.streams(), entry)

        # Different shard count -> different run key -> no resume.
        other = ShardedExactEngine(SMALL, n_shards=2,
                                   checkpoint_dir=ckpt)
        ref = ExactEngine(SMALL).run_nest(
            kernel.streams(), kernel.exact_trace())
        got = other.run_nest(kernel.streams(), entry)
        assert other.shards_resumed == 0
        assert (got.read_bytes, got.write_bytes) == \
            (ref.read_bytes, ref.write_bytes)

        # A corrupt checkpoint file is ignored, not trusted.
        victim = next(ckpt.rglob("shard-0.json"))
        victim.write_text("{broken")
        third = ShardedExactEngine(SMALL, n_shards=4,
                                   checkpoint_dir=ckpt)
        got3 = third.run_nest(kernel.streams(), entry)
        assert third.shards_resumed == 3
        assert (got3.read_bytes, got3.write_bytes) == \
            (ref.read_bytes, ref.write_bytes)
        entry.close()
