"""Stride detector and software-prefetch model."""

from repro.machine.config import PrefetchConfig
from repro.machine.prefetch import SoftwarePrefetch, StreamDetector


class TestStreamDetector:
    def test_sequential_stream_detected(self):
        d = StreamDetector()
        for i in range(6):
            d.observe("a", i * 8)
        assert d.is_detected("a")

    def test_strided_stream_detected(self):
        d = StreamDetector()
        for i in range(6):
            d.observe("b", i * 4096)
        assert d.is_detected("b")

    def test_below_threshold_not_detected(self):
        d = StreamDetector(PrefetchConfig(detect_threshold=4))
        for i in range(3):
            d.observe("a", i * 8)
        assert not d.is_detected("a")

    def test_irregular_stride_not_detected(self):
        d = StreamDetector()
        for addr in (0, 8, 100, 9000, 9008, 40):
            d.observe("a", addr)
        assert not d.is_detected("a")

    def test_repeated_address_not_detected(self):
        d = StreamDetector()
        for _ in range(10):
            d.observe("a", 64)
        assert not d.is_detected("a")

    def test_observe_regular_fast_path(self):
        d = StreamDetector()
        d.observe_regular("x", stride_bytes=1024, n_accesses=100)
        assert d.is_detected("x")

    def test_observe_regular_too_short(self):
        d = StreamDetector()
        d.observe_regular("x", stride_bytes=1024, n_accesses=2)
        assert not d.is_detected("x")

    def test_zero_stride_regular_not_detected(self):
        d = StreamDetector()
        d.observe_regular("x", stride_bytes=0, n_accesses=100)
        assert not d.is_detected("x")

    def test_any_strided_ignores_unit_stride(self):
        # Sequential (unit-stride) streams must NOT gate the store
        # bypass; only truly strided streams do.
        d = StreamDetector()
        d.observe_regular("seq", stride_bytes=8, n_accesses=100)
        assert d.is_detected("seq")
        assert not d.any_strided_detected(elem_size_hint=8)
        d.observe_regular("strided", stride_bytes=512, n_accesses=100)
        assert d.any_strided_detected(elem_size_hint=8)

    def test_table_capacity_bounded(self):
        d = StreamDetector(PrefetchConfig(max_streams=4))
        for i in range(20):
            d.observe(f"s{i}", 0)
        assert len(d._streams) <= 4

    def test_reset(self):
        d = StreamDetector()
        d.observe_regular("x", 64, 100)
        d.reset()
        assert not d.is_detected("x")

    def test_detected_streams_listing(self):
        d = StreamDetector()
        d.observe_regular("x", 64, 100)
        d.observe_regular("y", 8, 2)
        assert d.detected_streams() == ["x"]


class TestSoftwarePrefetch:
    def test_from_flag_string(self):
        pf = SoftwarePrefetch.from_compiler_flags("-O2 -fprefetch-loop-arrays")
        assert pf.dcbt and pf.dcbtst
        assert pf.forces_store_read

    def test_without_flag(self):
        pf = SoftwarePrefetch.from_compiler_flags("-O2")
        assert not pf.dcbt and not pf.dcbtst
        assert not pf.forces_store_read

    def test_flag_must_match_exactly(self):
        pf = SoftwarePrefetch.from_compiler_flags("-fprefetch-loop-arraysX")
        assert not pf.dcbtst
