"""Thread pinning policies (one-per-core / compact / scatter)."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.affinity import (
    cores_per_socket,
    hw_thread_of,
    pin_threads,
)
from repro.machine.config import SUMMIT


class TestHwThreadMapping:
    def test_smt4_numbering(self):
        assert hw_thread_of(SUMMIT, 0, 0) == 0
        assert hw_thread_of(SUMMIT, 0, 3) == 3
        assert hw_thread_of(SUMMIT, 1, 0) == 4
        assert hw_thread_of(SUMMIT, 21, 3) == 87  # last slot of socket 0

    def test_slot_range(self):
        with pytest.raises(ConfigurationError):
            hw_thread_of(SUMMIT, 0, 4)


class TestOnePerCore:
    def test_paper_setting(self, summit_node):
        bindings = pin_threads(summit_node, 21, policy="one-per-core")
        assert len(bindings) == 21
        # One thread per distinct physical core, first SMT slot only.
        assert len({b.core_id for b in bindings}) == 21
        assert all(b.hw_thread == b.core_id * 4 for b in bindings)
        # All on socket 0 (fills socket-by-socket).
        assert all(b.socket_id == 0 for b in bindings)

    def test_spills_to_second_socket(self, summit_node):
        bindings = pin_threads(summit_node, 42)
        assert sum(1 for b in bindings if b.socket_id == 1) == 21

    def test_reserved_core_never_used(self, summit_node):
        bindings = pin_threads(summit_node, 42)
        reserved_ids = {c.core_id for s in summit_node.sockets
                        for c in s.cores if c.reserved}
        assert not ({b.core_id for b in bindings} & reserved_ids)

    def test_capacity_limit(self, summit_node):
        with pytest.raises(ConfigurationError):
            pin_threads(summit_node, 43)


class TestCompact:
    def test_fills_smt_slots_first(self, summit_node):
        bindings = pin_threads(summit_node, 8, policy="compact")
        # 8 threads -> 2 physical cores, 4 SMT slots each.
        assert len({b.core_id for b in bindings}) == 2
        slots = [b.hw_thread % 4 for b in bindings[:4]]
        assert slots == [0, 1, 2, 3]

    def test_capacity_is_4x(self, summit_node):
        bindings = pin_threads(summit_node, 42 * 4, policy="compact")
        assert len(bindings) == 168
        with pytest.raises(ConfigurationError):
            pin_threads(summit_node, 42 * 4 + 1, policy="compact")


class TestScatter:
    def test_alternates_sockets(self, summit_node):
        bindings = pin_threads(summit_node, 4, policy="scatter")
        assert [b.socket_id for b in bindings] == [0, 1, 0, 1]

    def test_balances_bandwidth_domains(self, summit_node):
        bindings = pin_threads(summit_node, 10, policy="scatter")
        per_socket = cores_per_socket(bindings)
        assert per_socket == {0: 5, 1: 5}


class TestValidation:
    def test_unknown_policy(self, summit_node):
        with pytest.raises(ConfigurationError):
            pin_threads(summit_node, 2, policy="random")

    def test_zero_threads(self, summit_node):
        with pytest.raises(ConfigurationError):
            pin_threads(summit_node, 0)
