"""Thread pinning policies (one-per-core / compact / scatter) and the
operational affinity layer placing real worker processes on CPUs."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.machine.affinity import (
    apply_affinity,
    cores_per_socket,
    cpu_topology,
    hw_thread_of,
    parse_cpulist,
    pin_threads,
    plan_worker_cpus,
)
from repro.machine.config import SUMMIT


class TestHwThreadMapping:
    def test_smt4_numbering(self):
        assert hw_thread_of(SUMMIT, 0, 0) == 0
        assert hw_thread_of(SUMMIT, 0, 3) == 3
        assert hw_thread_of(SUMMIT, 1, 0) == 4
        assert hw_thread_of(SUMMIT, 21, 3) == 87  # last slot of socket 0

    def test_slot_range(self):
        with pytest.raises(ConfigurationError):
            hw_thread_of(SUMMIT, 0, 4)


class TestOnePerCore:
    def test_paper_setting(self, summit_node):
        bindings = pin_threads(summit_node, 21, policy="one-per-core")
        assert len(bindings) == 21
        # One thread per distinct physical core, first SMT slot only.
        assert len({b.core_id for b in bindings}) == 21
        assert all(b.hw_thread == b.core_id * 4 for b in bindings)
        # All on socket 0 (fills socket-by-socket).
        assert all(b.socket_id == 0 for b in bindings)

    def test_spills_to_second_socket(self, summit_node):
        bindings = pin_threads(summit_node, 42)
        assert sum(1 for b in bindings if b.socket_id == 1) == 21

    def test_reserved_core_never_used(self, summit_node):
        bindings = pin_threads(summit_node, 42)
        reserved_ids = {c.core_id for s in summit_node.sockets
                        for c in s.cores if c.reserved}
        assert not ({b.core_id for b in bindings} & reserved_ids)

    def test_capacity_limit(self, summit_node):
        with pytest.raises(ConfigurationError):
            pin_threads(summit_node, 43)


class TestCompact:
    def test_fills_smt_slots_first(self, summit_node):
        bindings = pin_threads(summit_node, 8, policy="compact")
        # 8 threads -> 2 physical cores, 4 SMT slots each.
        assert len({b.core_id for b in bindings}) == 2
        slots = [b.hw_thread % 4 for b in bindings[:4]]
        assert slots == [0, 1, 2, 3]

    def test_capacity_is_4x(self, summit_node):
        bindings = pin_threads(summit_node, 42 * 4, policy="compact")
        assert len(bindings) == 168
        with pytest.raises(ConfigurationError):
            pin_threads(summit_node, 42 * 4 + 1, policy="compact")


class TestScatter:
    def test_alternates_sockets(self, summit_node):
        bindings = pin_threads(summit_node, 4, policy="scatter")
        assert [b.socket_id for b in bindings] == [0, 1, 0, 1]

    def test_balances_bandwidth_domains(self, summit_node):
        bindings = pin_threads(summit_node, 10, policy="scatter")
        per_socket = cores_per_socket(bindings)
        assert per_socket == {0: 5, 1: 5}


class TestValidation:
    def test_unknown_policy(self, summit_node):
        with pytest.raises(ConfigurationError):
            pin_threads(summit_node, 2, policy="random")

    def test_zero_threads(self, summit_node):
        with pytest.raises(ConfigurationError):
            pin_threads(summit_node, 0)


# ----------------------------------------------------------------------
# Operational layer: placing real worker processes on real CPUs.
# ----------------------------------------------------------------------
class TestParseCpulist:
    def test_ranges_singles_and_dedup(self):
        assert parse_cpulist("0-3,8,10-11") == [0, 1, 2, 3, 8, 10, 11]
        assert parse_cpulist(" 2 , 0-1 ,2,\n") == [0, 1, 2]
        assert parse_cpulist("5") == [5]
        assert parse_cpulist("") == []

    def test_descending_range_rejected(self):
        with pytest.raises(ValueError, match="descending"):
            parse_cpulist("3-1")


class TestCpuTopology:
    def _usable(self):
        return sorted(os.sched_getaffinity(0))

    def test_nodes_partition_usable_cpus(self, tmp_path):
        usable = self._usable()
        half = max(1, len(usable) // 2)
        (tmp_path / "node0").mkdir()
        (tmp_path / "node0" / "cpulist").write_text(
            ",".join(map(str, usable[:half])))
        (tmp_path / "node1").mkdir()
        (tmp_path / "node1" / "cpulist").write_text(
            ",".join(map(str, usable[half:])) or "\n")
        topo = cpu_topology(sys_node_dir=str(tmp_path))
        flat = sorted(c for cpus in topo.values() for c in cpus)
        assert flat == usable
        assert topo[0] == usable[:half]

    def test_unclaimed_cpus_land_on_synthetic_node0(self, tmp_path):
        # /sys claims CPUs we cannot use, and misses the ones we can.
        (tmp_path / "node7").mkdir()
        (tmp_path / "node7" / "cpulist").write_text("999999")
        topo = cpu_topology(sys_node_dir=str(tmp_path))
        assert topo == {0: self._usable()}

    def test_missing_sys_dir_degrades_to_node0(self, tmp_path):
        topo = cpu_topology(sys_node_dir=str(tmp_path / "nope"))
        assert topo == {0: self._usable()}


class TestPlanWorkerCpus:
    TOPO = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}

    def test_reserves_producer_cpu_and_packs_by_node(self):
        plan = plan_worker_cpus(2, topology=self.TOPO)
        # CPU 0 reserved for the producer; 7 CPUs over 2 workers.
        assert plan == [[1, 2, 3, 4], [5, 6, 7]]

    def test_exact_fit_skips_producer_reservation(self):
        plan = plan_worker_cpus(8, topology=self.TOPO)
        assert plan == [[c] for c in range(8)]

    def test_node_order_is_numeric(self):
        plan = plan_worker_cpus(2, topology={1: [4, 5], 0: [0, 1]})
        assert plan == [[1, 4], [5]]  # node 0 first, CPU 0 reserved

    def test_degenerate_cases_return_none(self):
        assert plan_worker_cpus(0, topology=self.TOPO) is None
        assert plan_worker_cpus(2, topology={0: [3]}) is None
        assert plan_worker_cpus(9, topology=self.TOPO) is None

    def test_without_setaffinity_returns_none(self, monkeypatch):
        monkeypatch.delattr(os, "sched_setaffinity", raising=False)
        assert plan_worker_cpus(2, topology=self.TOPO) is None


class TestApplyAffinity:
    def test_empty_cpu_set_is_a_noop(self):
        assert apply_affinity([]) is False

    def test_pin_to_current_mask_succeeds(self):
        current = sorted(os.sched_getaffinity(0))
        assert apply_affinity(current) is True
        assert sorted(os.sched_getaffinity(0)) == current

    def test_impossible_cpu_swallowed(self):
        assert apply_affinity([999999]) is False
