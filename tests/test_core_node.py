"""Core timing model and assembled node behaviour."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET


class TestCore:
    def test_reserved_core_cannot_be_marked_busy(self, summit_node):
        reserved = summit_node.socket(0).cores[-1]
        assert reserved.reserved
        with pytest.raises(SimulationError):
            reserved.mark_busy()

    def test_usable_core_count(self, summit_node):
        assert len(summit_node.socket(0).usable_cores) == 21

    def test_pair_ids(self, summit_node):
        cores = summit_node.socket(0).cores
        assert cores[0].pair_id == cores[1].pair_id
        assert cores[0].pair_id != cores[2].pair_id

    def test_runtime_compute_bound(self, summit_node):
        core = summit_node.socket(0).cores[0]
        t = core.estimate_runtime(flops=8.0e9, mem_bytes=0)
        assert t == pytest.approx(1.0)

    def test_runtime_memory_bound(self, summit_node):
        core = summit_node.socket(0).cores[0]
        bw = SUMMIT.socket.memory_bandwidth
        t = core.estimate_runtime(flops=0, mem_bytes=bw)
        assert t == pytest.approx(1.0)

    def test_bandwidth_shared_between_cores(self, summit_node):
        core = summit_node.socket(0).cores[0]
        solo = core.estimate_runtime(0, 1e9, active_cores_on_socket=1)
        shared = core.estimate_runtime(0, 1e9, active_cores_on_socket=21)
        assert shared == pytest.approx(21 * solo)

    def test_negative_work_rejected(self, summit_node):
        core = summit_node.socket(0).cores[0]
        with pytest.raises(SimulationError):
            core.estimate_runtime(-1, 0)


class TestNode:
    def test_summit_topology(self, summit_node):
        assert len(summit_node.sockets) == 2
        assert len(summit_node.gpus) == 6
        assert len(summit_node.nics) == 2
        assert not summit_node.user_privileged

    def test_tellico_topology(self, tellico_node):
        assert len(tellico_node.sockets) == 2
        assert tellico_node.gpus == []
        assert tellico_node.nics == []
        assert tellico_node.user_privileged

    def test_gpus_per_socket(self, summit_node):
        assert len(summit_node.gpus_on_socket(0)) == 3
        assert len(summit_node.gpus_on_socket(1)) == 3

    def test_core_lookup_global_ids(self, summit_node):
        core = summit_node.core(23)
        assert core.socket_id == 1
        assert core.local_id == 1

    def test_socket_out_of_range(self, summit_node):
        with pytest.raises(ConfigurationError):
            summit_node.socket(2)

    def test_clock_advance_applies_background(self):
        node = Node(SUMMIT, seed=7)
        node.advance(0.1)
        assert node.clock == pytest.approx(0.1)
        assert node.socket(0).memory.total_read_bytes > 0

    def test_quiet_node_has_no_background(self):
        node = Node(SUMMIT, seed=7, noise=QUIET)
        node.advance(0.1)
        assert node.socket(0).memory.total_read_bytes == 0

    def test_background_can_be_suppressed(self):
        node = Node(SUMMIT, seed=7)
        node.advance(0.1, background=False)
        assert node.socket(0).memory.total_read_bytes == 0

    def test_time_cannot_reverse(self, summit_node):
        with pytest.raises(SimulationError):
            summit_node.advance(-1.0)

    def test_sockets_have_independent_noise(self):
        node = Node(SUMMIT, seed=7)
        node.advance(0.1)
        r0 = node.socket(0).memory.total_read_bytes
        r1 = node.socket(1).memory.total_read_bytes
        assert r0 != r1  # independent substreams

    def test_deterministic_across_instances(self):
        a = Node(SUMMIT, seed=11)
        b = Node(SUMMIT, seed=11)
        a.advance(0.05)
        b.advance(0.05)
        assert (a.socket(0).memory.total_read_bytes
                == b.socket(0).memory.total_read_bytes)
