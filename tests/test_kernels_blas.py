"""BLAS kernel models: numerics, streams, laws, expectations."""

import numpy as np
import pytest

from repro.engine.analytic import CacheContext
from repro.errors import ConfigurationError
from repro.kernels.blas import CappedGemv, Dot, Gemm, Gemv
from repro.machine.store import StorePolicy
from repro.engine.stream import resolve_policies
from repro.units import DOUBLE, MIB

CTX = CacheContext(capacity_bytes=110 * MIB)
SMALL_CTX = CacheContext(capacity_bytes=5 * MIB)


class TestDot:
    def test_numerics(self):
        d = Dot(100, seed=1)
        x, y = d.make_inputs()
        assert d.compute() == pytest.approx(float(np.dot(x, y)))

    def test_traffic_is_two_streams(self):
        d = Dot(1000)
        t = d.traffic(CTX)
        assert t.read_bytes == 2 * 1000 * DOUBLE
        assert t.write_bytes == 0

    def test_flops(self):
        assert Dot(1000).flops() == 2000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Dot(0)


class TestGemmNumerics:
    def test_matches_numpy(self):
        g = Gemm(32, seed=2)
        a, b = g.make_inputs()
        assert np.allclose(g.compute(), a @ b)

    def test_matches_triple_loop(self):
        g = Gemm(5, seed=3)
        a, b = g.make_inputs()
        ref = np.zeros((5, 5))
        for i in range(5):
            for j in range(5):
                for k in range(5):
                    ref[i, j] += a[i, k] * b[k, j]
        assert np.allclose(g.compute(), ref)

    def test_deterministic_inputs(self):
        a1, _ = Gemm(8, seed=5).make_inputs()
        a2, _ = Gemm(8, seed=5).make_inputs()
        assert np.array_equal(a1, a2)


class TestGemmTraffic:
    def test_cached_law_matches_paper_expectation(self):
        g = Gemm(256)
        t = g.traffic(CTX)
        e = g.expected_traffic()
        assert t.read_bytes == e.read_bytes
        assert t.write_bytes == e.write_bytes

    def test_b_stream_is_strided(self):
        streams = {s.name: s for s in Gemm(64).streams()}
        assert streams["B"].strided
        assert streams["A"].sequential
        assert streams["C"].interarrival == 128  # sparse stores

    def test_c_write_allocates(self):
        policies = resolve_policies(Gemm(64).streams())
        assert policies["C"] is StorePolicy.WRITE_ALLOCATE

    def test_thrashing_b_blows_up_reads(self):
        g = Gemm(1024)  # B = 8 MiB > 5 MiB share
        cached = g.traffic(CTX)
        thrash = g.traffic(SMALL_CTX)
        assert thrash.read_bytes > 50 * cached.read_bytes
        # writes unaffected: C is streamed once either way
        assert thrash.write_bytes == cached.write_bytes

    def test_footprint(self):
        assert Gemm(100).footprint_bytes() == 3 * 100 * 100 * DOUBLE

    def test_flops(self):
        assert Gemm(100).flops() == 2e6


class TestCappedGemv:
    def test_plain_gemv_factory(self):
        g = Gemv(64, 32)
        assert g.p == 64
        assert g.square

    def test_numerics_row_recycling(self):
        g = CappedGemv(m=10, n=4, p=3, seed=4)
        a, x = g.make_inputs()
        expected = np.array([a[i % 3] @ x for i in range(10)])
        assert np.allclose(g.compute(), expected)

    def test_cap_cannot_exceed_m(self):
        with pytest.raises(ConfigurationError):
            CappedGemv(m=4, n=8, p=8)

    def test_default_cap_is_min(self):
        assert CappedGemv(m=100, n=30).p == 30
        assert CappedGemv(m=20, n=30).p == 20

    def test_y_stream_is_sparse(self):
        streams = {s.name: s for s in CappedGemv(m=64, n=32).streams()}
        assert streams["y"].interarrival == 64  # 2N accesses per store

    def test_y_write_allocates(self):
        # "M reads are incurred by the hardware when writing into y"
        policies = resolve_policies(CappedGemv(m=64, n=32).streams())
        assert policies["y"] is StorePolicy.WRITE_ALLOCATE

    def test_capped_law_matches_paper_when_thrashing(self):
        # A larger than cache: measured law == M*N + M + N reads.
        k = CappedGemv(m=4096, n=1280, p=1280)
        t = k.traffic(SMALL_CTX)
        e = k.expected_traffic()
        assert t.read_bytes == pytest.approx(e.read_bytes, rel=0.01)
        assert t.write_bytes == e.write_bytes

    def test_square_law_equals_expectation(self):
        # Square regime: A makes exactly one pass, so the cached law
        # coincides with the paper's expectation M^2 + 2M.
        k = CappedGemv(m=512, n=512, p=512)
        t = k.traffic(CTX)
        e = k.expected_traffic()
        assert t.read_bytes == e.read_bytes
        assert t.write_bytes == e.write_bytes

    def test_memory_saving_vs_uncapped(self):
        capped = CappedGemv(m=1_000_000, n=1280, p=1280)
        uncapped_bytes = 1_000_000 * 1280 * DOUBLE
        assert capped.footprint_bytes() < uncapped_bytes / 100


class TestExpectations:
    def test_gemm_expected(self):
        e = Gemm(100).expected_traffic()
        assert e.read_bytes == 3 * 100 * 100 * 8
        assert e.write_bytes == 100 * 100 * 8

    def test_gemv_expected(self):
        e = CappedGemv(m=50, n=20, p=20).expected_traffic()
        assert e.read_bytes == (50 * 20 + 50 + 20) * 8
        assert e.write_bytes == 50 * 8
