"""PMCD over TCP: wire encoding and end-to-end measurement."""

import pytest

from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.pcp import protocol
from repro.pcp.client import PmapiContext
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pcp.server import (
    PMCDServer,
    RemotePMCD,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.pmu.events import pcp_metric_name

METRIC = pcp_metric_name(0, write=False)


@pytest.fixture
def node():
    return Node(SUMMIT, seed=8, noise=QUIET)


@pytest.fixture
def server(node):
    server = PMCDServer(start_pmcd_for_node(node)).start()
    yield server
    server.stop()


class TestWireEncoding:
    def test_lookup_roundtrip(self):
        req = protocol.LookupRequest(names=("a.b", "c.d"))
        assert decode_request(encode_request(req)) == req

    def test_fetch_roundtrip(self):
        req = protocol.FetchRequest(pmids=(1, 2, 3))
        assert decode_request(encode_request(req)) == req

    def test_response_roundtrip(self):
        resp = protocol.FetchResponse(
            status=protocol.PCPStatus.OK, timestamp=1.5,
            metrics=(protocol.MetricValues(pmid=7,
                                           values={"cpu87": 42}),),
        )
        decoded = decode_response(encode_response(resp))
        assert decoded.metrics[0].values == {"cpu87": 42}
        assert decoded.timestamp == 1.5

    def test_error_response_roundtrip(self):
        resp = protocol.ErrorResponse(protocol.PCPStatus.PM_ERR_NAME, "x")
        decoded = decode_response(encode_response(resp))
        assert decoded.status == protocol.PCPStatus.PM_ERR_NAME


class TestOverTheWire:
    def test_lookup_and_fetch(self, server, node):
        remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
        try:
            client = PmapiContext(remote, node=node)
            node.socket(0).record_traffic(read_bytes=8 * 64)
            assert client.fetch_one(METRIC, "cpu87") == 64
        finally:
            remote.close()

    def test_remote_traverse(self, server):
        remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
        try:
            metrics = list(remote.pmns.traverse("perfevent"))
            assert len(metrics) == 16
            assert METRIC in metrics
        finally:
            remote.close()

    def test_unknown_name_over_wire(self, server, node):
        remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
        try:
            client = PmapiContext(remote, node=node)
            with pytest.raises(Exception):
                client.lookup_names(["no.such.metric"])
        finally:
            remote.close()

    def test_full_papi_stack_over_tcp(self, server, node):
        """The PAPI PCP component works unchanged across the socket."""
        from repro.papi.components.pcp import PCPComponent
        from repro.papi.papi import Papi

        remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
        try:
            papi = Papi(node)  # no local pmcd
            context = PmapiContext(remote, node=node)
            papi.components.register(PCPComponent(context, node))
            es = papi.create_eventset()
            es.add_event(f"pcp:::{METRIC}:cpu87")
            es.start()
            node.socket(0).record_traffic(read_bytes=8 * 64 * 5)
            assert es.stop() == [320]
        finally:
            remote.close()
