"""Measurement sessions end to end: PCP vs direct, noise paths."""

import pytest

from repro.errors import ConfigurationError, PapiPermissionDenied
from repro.kernels.blas import Gemm
from repro.measure.session import (
    VIA_PCP,
    VIA_PERF_UNCORE,
    MeasurementSession,
)
from repro.noise import QUIET


class TestConstruction:
    def test_default_via_follows_privilege(self):
        assert MeasurementSession("summit", seed=1).via == VIA_PCP
        assert MeasurementSession("tellico", seed=1).via == VIA_PERF_UNCORE

    def test_invalid_via(self):
        with pytest.raises(ConfigurationError):
            MeasurementSession("summit", via="telepathy")

    def test_summit_cannot_use_uncore(self):
        session = MeasurementSession("summit", via=VIA_PERF_UNCORE, seed=1)
        with pytest.raises(PapiPermissionDenied):
            session.measure_kernel(Gemm(64))

    def test_event_name_spelling_per_path(self):
        pcp = MeasurementSession("summit", seed=1)
        unc = MeasurementSession("tellico", seed=1)
        assert pcp.nest_event_names(0)[0].startswith("pcp:::")
        assert unc.nest_event_names(0)[0].startswith("power9_nest")
        assert len(pcp.nest_event_names(0)) == 16

    def test_batch_core_count(self):
        assert MeasurementSession("summit", seed=1).batch_core_count() == 21
        assert MeasurementSession("tellico", seed=1).batch_core_count() == 16


class TestQuietMeasurements:
    def test_measured_equals_law_without_noise(self, quiet_summit_session):
        kernel = Gemm(256)
        result = quiet_summit_session.measure_kernel(kernel, noisy=False)
        assert result.measured.read_bytes == \
            result.true_traffic.read_bytes
        assert result.read_ratio == pytest.approx(1.0, rel=0.01)

    def test_repetitions_average_back_to_one_run(self, quiet_summit_session):
        kernel = Gemm(128)
        one = quiet_summit_session.measure_kernel(kernel, repetitions=1,
                                                  noisy=False)
        ten = quiet_summit_session.measure_kernel(kernel, repetitions=10,
                                                  noisy=False)
        assert ten.measured.read_bytes == pytest.approx(
            one.measured.read_bytes, rel=0.01)

    def test_batched_expectation_scales(self, quiet_summit_session):
        result = quiet_summit_session.measure_kernel(Gemm(128), n_cores=21,
                                                     noisy=False)
        assert result.expected.read_bytes == 21 * Gemm(128).expected_traffic().read_bytes

    def test_direct_path_matches_pcp_path(self, quiet_summit_session,
                                          quiet_tellico_session):
        # The headline claim with noise off: both paths read identical
        # counter values for the same kernel law (modulo cache-share
        # differences between 21- and 16-core sockets at small N).
        kernel = Gemm(128)
        a = quiet_summit_session.measure_kernel(kernel, noisy=False)
        b = quiet_tellico_session.measure_kernel(kernel, noisy=False)
        assert a.measured.read_bytes == b.measured.read_bytes
        assert a.measured.write_bytes == b.measured.write_bytes


class TestResultProperties:
    def test_ratios(self, quiet_summit_session):
        r = quiet_summit_session.measure_kernel(Gemm(128), noisy=False)
        assert r.read_ratio == pytest.approx(1.0)
        assert r.write_ratio == pytest.approx(1.0)
        assert r.reads_per_write == pytest.approx(3.0)

    def test_metadata(self, quiet_summit_session):
        r = quiet_summit_session.measure_kernel(Gemm(64), repetitions=3)
        assert r.machine == "summit"
        assert r.via == VIA_PCP
        assert r.repetitions == 3
        assert r.runtime_per_rep > 0

    def test_rejects_zero_repetitions(self, quiet_summit_session):
        with pytest.raises(ConfigurationError):
            quiet_summit_session.measure_kernel(Gemm(64), repetitions=0)


class TestNoisePath:
    def test_noise_enters_through_counters(self):
        noisy = MeasurementSession("summit", seed=5)
        quiet = MeasurementSession("summit", seed=5, noise=QUIET)
        kernel = Gemm(64)
        rn = noisy.measure_kernel(kernel)
        rq = quiet.measure_kernel(kernel, noisy=False)
        assert rn.measured.read_bytes != rq.measured.read_bytes

    def test_deterministic_given_seed(self):
        a = MeasurementSession("summit", seed=5).measure_kernel(Gemm(64))
        b = MeasurementSession("summit", seed=5).measure_kernel(Gemm(64))
        assert tuple(a.measured) == tuple(b.measured)
