"""Simulated MPI: cluster, placement, collectives, grid, NIC counters."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.machine.config import NICConfig, SUMMIT
from repro.mpi.comm import Cluster, SimComm
from repro.mpi.grid import ProcessorGrid
from repro.mpi.network import COUNTER_UNIT_BYTES, NICPort
from repro.noise import QUIET


@pytest.fixture
def cluster():
    return Cluster(SUMMIT, n_nodes=2, seed=3, noise=QUIET)


@pytest.fixture
def comm(cluster):
    return SimComm(cluster)


class TestCluster:
    def test_node_count(self, cluster):
        assert cluster.n_nodes == 2

    def test_lockstep_clocks(self, cluster):
        cluster.advance_all(0.5)
        assert all(n.clock == pytest.approx(0.5) for n in cluster.nodes)

    def test_needs_nodes(self):
        with pytest.raises(MPIError):
            Cluster(SUMMIT, 0)

    def test_nodes_seeded_independently(self):
        c = Cluster(SUMMIT, 2, seed=3)
        c.advance_all(0.1)
        assert (c.nodes[0].socket(0).memory.total_read_bytes
                != c.nodes[1].socket(0).memory.total_read_bytes)


class TestPlacement:
    def test_one_rank_per_socket(self, comm):
        assert comm.size == 4  # 2 nodes x 2 sockets
        assert comm.placements[1].node_index == 0
        assert comm.placements[1].socket_id == 1
        assert comm.placements[2].node_index == 1

    def test_socket_of(self, comm):
        assert comm.socket_of(3).socket_id == 1

    def test_invalid_ranks_per_node(self, cluster):
        with pytest.raises(MPIError):
            SimComm(cluster, ranks_per_node=3)


class TestAlltoall:
    def test_memory_traffic_accounted(self, comm):
        comm.alltoall_bytes(1000)
        for rank in range(comm.size):
            sock = comm.socket_of(rank)
            # Each rank sends to 3 peers and receives from 3.
            assert sock.memory.total_read_bytes == 3 * 1024  # rounded
            assert sock.memory.total_write_bytes == 3 * 1024

    def test_nic_traffic_only_for_internode(self, comm, cluster):
        comm.alltoall_bytes(1000)
        node0 = cluster.nodes[0]
        # Rank 0 sends 1000 B to ranks 2 and 3 (remote); rank 1 also
        # sends 2x1000 remote -> 4000 octets out of node 0 via 2 NICs.
        total_xmit = sum(n.xmit_octets for n in node0.nics)
        assert total_xmit == 4 * 1000

    def test_exchange_advances_clock(self, comm, cluster):
        before = cluster.clock
        comm.alltoall_bytes(10_000_000)
        assert cluster.clock > before

    def test_advance_false_leaves_clock(self, comm, cluster):
        duration = comm.alltoall_bytes(10_000_000, advance=False)
        assert duration > 0
        assert cluster.clock == 0.0

    def test_alltoallv_transpose_semantics(self, comm):
        n = comm.size
        chunks = [[np.full(2, 10 * i + j) for j in range(n)]
                  for i in range(n)]
        recv = comm.alltoallv(chunks, account=False)
        for j in range(n):
            for i in range(n):
                assert recv[j][i][0] == 10 * i + j

    def test_alltoallv_shape_validation(self, comm):
        with pytest.raises(MPIError):
            comm.alltoallv([[np.zeros(1)]])

    def test_barrier_synchronises(self, comm, cluster):
        cluster.nodes[0].advance(0.5)
        comm.barrier()
        assert cluster.nodes[1].clock == pytest.approx(0.5)


class TestSubComm:
    def test_group_alltoall_restricted(self, comm):
        sub = comm.sub_comm([0, 1])
        sub.alltoall_bytes(1000)
        assert comm.socket_of(2).memory.total_read_bytes == 0
        assert comm.socket_of(0).memory.total_read_bytes > 0

    def test_duplicate_ranks_rejected(self, comm):
        with pytest.raises(MPIError):
            comm.sub_comm([0, 0])

    def test_out_of_range_rejected(self, comm):
        with pytest.raises(MPIError):
            comm.sub_comm([99])


class TestProcessorGrid:
    def test_paper_grids(self):
        assert ProcessorGrid(2, 4).size == 8
        assert ProcessorGrid(4, 8).size == 32
        assert ProcessorGrid(8, 8).size == 64

    def test_coords_roundtrip(self):
        grid = ProcessorGrid(4, 8)
        for rank in range(grid.size):
            row, col = grid.coords_of(rank)
            assert grid.rank_of(row, col) == rank

    def test_row_and_col_ranks(self):
        grid = ProcessorGrid(2, 4)
        assert grid.row_ranks(0) == [0, 1, 2, 3]
        assert grid.col_ranks(1) == [1, 5]

    def test_local_shape(self):
        grid = ProcessorGrid(2, 4)
        assert grid.local_shape(16) == (8, 4, 16)

    def test_indivisible_rejected(self):
        with pytest.raises(MPIError):
            ProcessorGrid(2, 4).local_shape(10)

    def test_bad_coords(self):
        grid = ProcessorGrid(2, 4)
        with pytest.raises(MPIError):
            grid.coords_of(8)
        with pytest.raises(MPIError):
            grid.rank_of(2, 0)


class TestNICPort:
    def test_counter_unit_is_4_bytes(self):
        nic = NICPort(NICConfig())
        nic.record_recv(4000)
        assert nic.port_recv_data == 1000
        assert COUNTER_UNIT_BYTES == 4

    def test_name_spelling(self):
        assert NICPort(NICConfig(name="mlx5_1")).name == "mlx5_1_1_ext"

    def test_transfer_time(self):
        nic = NICPort(NICConfig(bandwidth=1e9))
        assert nic.transfer_time(1e9) == pytest.approx(1.0)

    def test_windowed_byte_queries(self):
        nic = NICPort(NICConfig())
        nic.record_recv(1000, t0=0.0, duration=1.0)
        assert nic.recv_bytes_between(0.0, 0.5) == 500
        assert nic.recv_bytes_between(0.0, 2.0) == 1000

    def test_instantaneous_records(self):
        nic = NICPort(NICConfig())
        nic.record_xmit(500, t0=1.0)
        assert nic.xmit_bytes_between(0.9, 1.1) == 500
        assert nic.xmit_bytes_between(1.1, 2.0) == 0

    def test_negative_rejected(self):
        nic = NICPort(NICConfig())
        with pytest.raises(MPIError):
            nic.record_recv(-1)
