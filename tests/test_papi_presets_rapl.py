"""Preset events and the RAPL package-energy component."""

import pytest

from repro.engine.executor import Executor
from repro.errors import PapiNoEvent
from repro.kernels.blas import Gemm
from repro.papi.components.rapl import IDLE_PACKAGE_W, PER_CORE_W
from repro.papi.presets import (
    PRESETS,
    PresetEventSet,
    available_presets,
    resolve_preset,
)


class TestPresetTable:
    def test_standard_presets_present(self):
        for name in ("PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS"):
            assert PRESETS[name].standard

    def test_mem_bytes_marked_nonstandard(self):
        assert not PRESETS["PAPI_MEM_BYTES"].standard
        assert PRESETS["PAPI_MEM_BYTES"].derivation == "DERIVED_ADD"

    def test_all_presets_available_on_summit(self, quiet_summit_papi):
        assert available_presets(quiet_summit_papi) == sorted(PRESETS)

    def test_unknown_preset(self, quiet_summit_papi):
        with pytest.raises(PapiNoEvent):
            resolve_preset(quiet_summit_papi, "PAPI_L1_DCM")


class TestPresetMeasurement:
    def test_fp_ops_counts_kernel_flops(self, quiet_summit_papi,
                                        quiet_summit_node):
        pes = PresetEventSet(quiet_summit_papi, ["PAPI_FP_OPS"])
        pes.start()
        kernel = Gemm(128)
        Executor(quiet_summit_node).run(kernel, noisy=False)
        assert pes.stop()["PAPI_FP_OPS"] == int(kernel.flops())

    def test_mem_bytes_sums_all_channels(self, quiet_summit_papi,
                                         quiet_summit_node):
        pes = PresetEventSet(quiet_summit_papi, ["PAPI_MEM_BYTES"])
        pes.start()
        quiet_summit_node.socket(0).record_traffic(read_bytes=8 * 64 * 7,
                                                   write_bytes=8 * 64 * 3)
        assert pes.stop()["PAPI_MEM_BYTES"] == 8 * 64 * 10

    def test_mixed_component_presets_together(self, quiet_summit_papi,
                                              quiet_summit_node):
        pes = PresetEventSet(quiet_summit_papi,
                             ["PAPI_FP_OPS", "PAPI_MEM_BYTES"])
        pes.start()
        kernel = Gemm(96)
        Executor(quiet_summit_node).run(kernel, noisy=False)
        values = pes.stop()
        assert values["PAPI_FP_OPS"] == int(kernel.flops())
        assert values["PAPI_MEM_BYTES"] > 0

    def test_empty_presets_rejected(self, quiet_summit_papi):
        with pytest.raises(PapiNoEvent):
            PresetEventSet(quiet_summit_papi, [])


class TestRapl:
    def test_event_naming(self, quiet_summit_papi):
        events = quiet_summit_papi.component("rapl").list_events()
        assert events == ["rapl:::PACKAGE_ENERGY:PACKAGE0",
                          "rapl:::PACKAGE_ENERGY:PACKAGE1"]

    def test_idle_power_integrates(self, quiet_summit_papi,
                                   quiet_summit_node):
        es = quiet_summit_papi.create_eventset()
        es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
        es.start()
        quiet_summit_node.advance(0.5, background=False)
        uj = es.stop()[0]
        assert uj == pytest.approx(IDLE_PACKAGE_W * 0.5 * 1e6, rel=0.01)

    def test_dynamic_power_tracks_busy_cores(self, quiet_summit_papi,
                                             quiet_summit_node):
        es = quiet_summit_papi.create_eventset()
        es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
        es.start()
        record = Executor(quiet_summit_node).run(Gemm(512), n_cores=10,
                                                 noisy=False)
        watts = es.stop()[0] / 1e6 / record.runtime_per_rep
        assert watts == pytest.approx(IDLE_PACKAGE_W + 10 * PER_CORE_W,
                                      rel=0.01)

    def test_counter_is_monotonic(self, quiet_summit_papi,
                                  quiet_summit_node):
        handle = quiet_summit_papi.component("rapl").open_event(
            "rapl:::PACKAGE_ENERGY:PACKAGE0")
        first = handle.read()
        quiet_summit_node.advance(0.1, background=False)
        assert handle.read() > first

    def test_bad_package(self, quiet_summit_papi):
        with pytest.raises(PapiNoEvent):
            quiet_summit_papi.component("rapl").open_event(
                "rapl:::PACKAGE_ENERGY:PACKAGE9")

    def test_sockets_independent(self, quiet_summit_papi,
                                 quiet_summit_node):
        es = quiet_summit_papi.create_eventset()
        es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE1")
        es.start()
        Executor(quiet_summit_node).run(Gemm(256), socket_id=0,
                                        n_cores=21, noisy=False)
        record = Executor(quiet_summit_node).run(Gemm(256), socket_id=1,
                                                 n_cores=1, noisy=False)
        # Package 1 saw only its own single-core run (plus idle during
        # socket 0's run — both advances tick both packages' idle).
        total_t = 2 * record.runtime_per_rep
        expected = (IDLE_PACKAGE_W * total_t
                    + PER_CORE_W * 1 * record.runtime_per_rep) * 1e6
        assert es.stop()[0] == pytest.approx(expected, rel=0.05)