"""Analytic traffic primitives."""

import pytest

from repro.engine.analytic import (
    CacheContext,
    cache_fit_fraction,
    combine,
    reused_read,
    sequential_read,
    sequential_write,
    strided_access,
)
from repro.machine.cache import TrafficCounters
from repro.machine.config import CacheConfig
from repro.machine.store import StorePolicy
from repro.units import MIB

CTX = CacheContext(capacity_bytes=5 * MIB)


class TestSequential:
    def test_read_rounds_to_granule(self):
        assert sequential_read(100, CTX).read_bytes == 128

    def test_write_bypass_no_read(self):
        t = sequential_write(1000, CTX, StorePolicy.BYPASS)
        assert t.read_bytes == 0
        assert t.write_bytes == 1024

    def test_write_allocate_reads_per_write(self):
        t = sequential_write(1000, CTX, StorePolicy.WRITE_ALLOCATE)
        assert t.read_bytes == t.write_bytes == 1024


class TestCacheFitFraction:
    def test_fits(self):
        assert cache_fit_fraction(MIB, 5 * MIB) == 1.0

    def test_thrashes(self):
        assert cache_fit_fraction(50 * MIB, 5 * MIB) == 0.0

    def test_rolloff_monotone(self):
        vals = [cache_fit_fraction(int(f * 5 * MIB), 5 * MIB)
                for f in (0.8, 0.9, 1.0, 1.1, 1.2, 1.3)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
        assert vals[0] == 1.0 and vals[-1] == 0.0

    def test_zero_capacity(self):
        assert cache_fit_fraction(100, 0) == 0.0


class TestReusedRead:
    def test_cached_working_set_reads_once(self):
        t = reused_read(MIB, passes=10, ctx=CTX)
        assert t.read_bytes == MIB

    def test_thrashing_working_set_reads_every_pass(self):
        t = reused_read(50 * MIB, passes=3, ctx=CTX)
        assert t.read_bytes == 3 * 50 * MIB

    def test_fractional_passes(self):
        t = reused_read(10 * MIB, passes=2.5, ctx=CTX)
        assert t.read_bytes == pytest.approx(2.5 * 10 * MIB, rel=0.01)

    def test_spill_adds_gradual_extra(self):
        spilled = CacheContext(capacity_bytes=110 * MIB,
                               spill_extra_fraction=0.004)
        clean = CacheContext(capacity_bytes=110 * MIB)
        t_spill = reused_read(20 * MIB, passes=100, ctx=spilled)
        t_clean = reused_read(20 * MIB, passes=100, ctx=clean)
        assert t_spill.read_bytes > t_clean.read_bytes
        # Gradual: well under the full re-read cost.
        assert t_spill.read_bytes < 100 * 20 * MIB

    def test_single_pass_has_no_spill(self):
        spilled = CacheContext(capacity_bytes=110 * MIB,
                               spill_extra_fraction=0.004)
        assert reused_read(20 * MIB, 1, spilled).read_bytes == 20 * MIB

    def test_passes_below_one_clamped(self):
        assert reused_read(MIB, 0.5, CTX).read_bytes == MIB


class TestStridedAccess:
    def test_cached_stride_costs_footprint(self):
        t = strided_access(n_accesses=1000, elem_bytes=16, ctx=CTX,
                           working_set_bytes=1 * MIB,
                           footprint_bytes=16000)
        assert t.read_bytes == pytest.approx(16000, abs=64)

    def test_uncached_stride_costs_granule_per_access(self):
        t = strided_access(n_accesses=1000, elem_bytes=16, ctx=CTX,
                           working_set_bytes=50 * MIB,
                           footprint_bytes=16000)
        assert t.read_bytes == 1000 * 64

    def test_amplification_factor_is_four_for_16b(self):
        cached = strided_access(1000, 16, CTX, 1 * MIB, 16000)
        thrash = strided_access(1000, 16, CTX, 50 * MIB, 16000)
        assert thrash.read_bytes / cached.read_bytes == pytest.approx(
            4.0, rel=0.01)

    def test_strided_write_allocate(self):
        t = strided_access(1000, 16, CTX, 1 * MIB, 16000, is_write=True,
                           policy=StorePolicy.WRITE_ALLOCATE)
        assert t.read_bytes > 0
        assert t.write_bytes == pytest.approx(16000, abs=64)


class TestCombine:
    def test_sum(self):
        out = combine(TrafficCounters(1, 2), TrafficCounters(10, 20))
        assert (out.read_bytes, out.write_bytes) == (11, 22)

    def test_empty(self):
        assert combine().total_bytes == 0


class TestCacheContextFactory:
    def test_from_cache_config(self):
        cfg = CacheConfig(capacity_bytes=10 * MIB)
        ctx = CacheContext.from_cache_config(cfg, capacity=5 * MIB,
                                             spill=0.01)
        assert ctx.capacity_bytes == 5 * MIB
        assert ctx.granule == 64
        assert ctx.line_bytes == 128
        assert ctx.spill_extra_fraction == 0.01
