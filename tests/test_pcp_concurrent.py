"""Concurrency: many PmapiContext clients against one live TCP pmcd.

Service invariants under concurrent load:

* no lost or cross-wired responses (every fetch answers exactly the
  PMIDs asked on that connection),
* monotone fetch timestamps per client,
* coalescing invokes the PMDA strictly fewer times than the naive
  per-request count,
* clean shutdown with all sockets closed.
"""

import socket
import threading

import pytest

from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.pcp.client import PmapiContext
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pcp.server import PMCDServer, RemotePMCD
from repro.pcp.stress import run_stress
from repro.pmu.events import pcp_metric_name

ALL_METRICS = [pcp_metric_name(channel, write)
               for channel in range(8) for write in (False, True)]


@pytest.fixture
def node():
    return Node(SUMMIT, seed=11, noise=QUIET)


@pytest.fixture
def server(node):
    server = PMCDServer(start_pmcd_for_node(node)).start()
    yield server
    server.stop()


class TestStressRun:
    def test_eight_clients_no_cross_wiring(self):
        report = run_stress(n_clients=8, n_fetches=12, seed=3)
        assert report["errors"] == []
        assert report["cross_wired"] == 0
        assert report["non_monotone_timestamps"] == 0
        assert report["total_fetches"] == 8 * 12
        assert report["connections"] >= 8

    @pytest.mark.slow
    def test_sixteen_clients_sustained(self):
        report = run_stress(n_clients=16, n_fetches=64, seed=5)
        assert report["errors"] == []
        assert report["cross_wired"] == 0
        assert report["non_monotone_timestamps"] == 0

    def test_coalescing_disabled_still_correct(self):
        report = run_stress(n_clients=4, n_fetches=8, seed=7,
                            coalesce=False)
        assert report["errors"] == []
        assert report["cross_wired"] == 0
        assert report["coalesced"] == 0
        # Without coalescing every fetch PDU pays its own PMDA reads.
        assert report["pmda_fetch_calls"] == report["naive_pmda_calls"]


class TestCoalescing:
    def test_concurrent_identical_fetches_share_one_pmda_read(self, server):
        """8 clients fetch the same PMIDs while dispatch is paused; on
        resume the batch is served with ONE PMDA read per PMID —
        strictly fewer than the naive per-request count."""
        n_clients = 8
        remotes = [RemotePMCD(*server.address, round_trip_seconds=0.0)
                   for _ in range(n_clients)]
        contexts = [PmapiContext(r) for r in remotes]
        pmids = contexts[0].lookup_names(ALL_METRICS)
        for context in contexts[1:]:
            assert context.lookup_names(ALL_METRICS) == pmids
        calls_before = server.pmcd.stats.pmda_fetch_calls
        requests_before = server.stats.snapshot()["requests"]
        server.pause_dispatch()
        results = [None] * n_clients
        errors = []

        def fetch(i):
            try:
                results[i] = contexts[i].fetch(pmids)
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=fetch, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        # All 8 fetches pile up behind the paused dispatcher (which may
        # already hold one request at the gate, hence n_clients - 1).
        deadline = 250
        while deadline:
            received = (server.stats.snapshot()["requests"]
                        - requests_before)
            if (received >= n_clients
                    and server.queue_depth() >= n_clients - 1):
                break
            threading.Event().wait(0.02)
            deadline -= 1
        assert server.queue_depth() >= n_clients - 1
        threading.Event().wait(0.1)  # let the last enqueue land
        server.resume_dispatch()
        for t in threads:
            t.join(timeout=10)
        for r in remotes:
            r.close()
        assert not errors
        naive = n_clients * len(pmids)
        actual = server.pmcd.stats.pmda_fetch_calls - calls_before
        assert actual == len(pmids)       # one read per PMID, shared
        assert actual < naive             # strictly fewer than naive
        assert server.stats.coalesced >= n_clients - 1
        # Every client still got its own complete answer.
        for values in results:
            assert set(values) == set(pmids)

    def test_distinct_pmid_sets_not_coalesced(self, server):
        remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
        context = PmapiContext(remote)
        pmids = context.lookup_names(ALL_METRICS)
        context.fetch(pmids[:4])
        context.fetch(pmids[4:8])
        assert server.stats.coalesced == 0
        remote.close()


class TestTimestampsAndShutdown:
    def test_monotone_timestamps_single_client(self, server, node):
        remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
        context = PmapiContext(remote)
        pmids = context.lookup_names(ALL_METRICS[:2])
        stamps = []
        for _ in range(5):
            context.fetch(pmids)
            stamps.append(context.last_fetch_timestamp)
            node.advance(0.5)
        assert stamps == sorted(stamps)
        remote.close()

    def test_clean_shutdown_closes_sockets(self, node):
        server = PMCDServer(start_pmcd_for_node(node)).start()
        remotes = [RemotePMCD(*server.address, round_trip_seconds=0.0)
                   for _ in range(4)]
        contexts = [PmapiContext(r) for r in remotes]
        for context in contexts:
            context.lookup_names(ALL_METRICS[:1])
        address = server.address
        server.stop()
        assert server.open_connections == 0
        assert not server._dispatcher.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)
        for r in remotes:
            r.close()

    def test_queue_depth_counter_surfaces(self, server):
        remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
        context = PmapiContext(remote)
        context.lookup_names(ALL_METRICS[:1])
        snapshot = server.stats.snapshot()
        assert snapshot["max_queue_depth"] >= 1
        assert snapshot["requests"] >= 1
        assert snapshot["latency_max_usec"] >= 0
        remote.close()
