"""GPU device, power log, and cuFFT plan."""

import numpy as np
import pytest

from repro.errors import GPUError
from repro.gpu.cufft import CufftPlan1D
from repro.gpu.power import PowerLog
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET


@pytest.fixture
def node():
    return Node(SUMMIT, seed=4, noise=QUIET)


@pytest.fixture
def gpu(node):
    return node.gpus[0]


class TestPowerLog:
    def test_idle_baseline(self):
        log = PowerLog(40.0)
        assert log.power_at(123.0) == 40.0

    def test_busy_interval(self):
        log = PowerLog(40.0)
        log.add_interval(1.0, 2.0, 300.0)
        assert log.power_at(1.5) == 300.0
        assert log.power_at(2.5) == 40.0

    def test_energy_integral(self):
        log = PowerLog(40.0)
        log.add_interval(0.0, 1.0, 300.0)
        assert log.energy_joules(0.0, 2.0) == pytest.approx(
            300.0 + 40.0)

    def test_average_power(self):
        log = PowerLog(40.0)
        log.add_interval(0.0, 1.0, 300.0)
        assert log.average_power(0.0, 2.0) == pytest.approx(170.0)

    def test_average_at_point_is_instantaneous(self):
        log = PowerLog(40.0)
        log.add_interval(0.0, 1.0, 250.0)
        assert log.average_power(0.5, 0.5) == 250.0

    def test_busy_seconds(self):
        log = PowerLog(40.0)
        log.add_interval(0.0, 1.0, 300.0)
        log.add_interval(3.0, 4.0, 300.0)
        assert log.busy_seconds(0.5, 3.5) == pytest.approx(1.0)

    def test_validation(self):
        log = PowerLog(40.0)
        with pytest.raises(GPUError):
            log.add_interval(2.0, 1.0, 300.0)
        with pytest.raises(GPUError):
            log.add_interval(0.0, 1.0, 10.0)  # below idle
        with pytest.raises(GPUError):
            PowerLog(-1.0)


class TestGPUDevice:
    def test_h2d_reads_host_memory(self, gpu, node):
        gpu.h2d(1 << 20)
        assert node.socket(0).memory.total_read_bytes == 1 << 20
        assert node.socket(0).memory.total_write_bytes == 0

    def test_d2h_writes_host_memory(self, gpu, node):
        gpu.d2h(1 << 20)
        assert node.socket(0).memory.total_write_bytes == 1 << 20

    def test_dma_advances_clock(self, gpu, node):
        duration = gpu.h2d(int(gpu.config.dma_bandwidth))
        assert duration == pytest.approx(1.0)
        assert node.clock == pytest.approx(1.0)

    def test_execute_logs_power_spike(self, gpu, node):
        t0 = node.clock
        duration = gpu.execute(gpu.config.flops)  # 1 second of work
        assert duration == pytest.approx(1.0)
        assert gpu.power.power_at(t0 + 0.5) == gpu.config.peak_power_w

    def test_memory_tracking(self, gpu):
        gpu.malloc(1 << 30)
        assert gpu.allocated_bytes == 1 << 30
        gpu.free(1 << 30)
        assert gpu.allocated_bytes == 0

    def test_oom(self, gpu):
        with pytest.raises(GPUError):
            gpu.malloc(gpu.config.memory_bytes + 1)

    def test_over_free(self, gpu):
        with pytest.raises(GPUError):
            gpu.free(1)

    def test_traffic_lands_on_own_socket(self, node):
        gpu_s1 = node.gpus_on_socket(1)[0]
        gpu_s1.h2d(4096)
        assert node.socket(1).memory.total_read_bytes == 4096
        assert node.socket(0).memory.total_read_bytes == 0

    def test_cumulative_counters(self, gpu):
        gpu.h2d(100)
        gpu.h2d(200)
        gpu.d2h(50)
        assert gpu.h2d_bytes == 300
        assert gpu.d2h_bytes == 50


class TestCufftPlan:
    def test_numerics_forward(self):
        plan = CufftPlan1D(n=64, batch=8)
        rng = np.random.default_rng(0)
        data = rng.standard_normal((8, 64)) + 1j * rng.standard_normal((8, 64))
        assert np.allclose(plan.execute(data), np.fft.fft(data, axis=1))

    def test_inverse_is_unnormalised(self):
        # cuFFT convention: ifft(fft(x)) == N * x ... our inverse
        # multiplies back by N, so the round trip recovers x scaled.
        plan = CufftPlan1D(n=32, batch=2)
        rng = np.random.default_rng(1)
        data = rng.standard_normal((2, 32)) + 0j
        roundtrip = plan.execute(plan.execute(data), inverse=True)
        assert np.allclose(roundtrip, data * 32)

    def test_flops_formula(self):
        plan = CufftPlan1D(n=1024, batch=4)
        assert plan.flops == pytest.approx(5 * 4 * 1024 * 10)

    def test_byte_volumes(self):
        plan = CufftPlan1D(n=256, batch=16)
        assert plan.bytes_in == 16 * 256 * 16
        assert plan.bytes_in == plan.bytes_out

    def test_simulate_drives_all_three_stages(self, gpu, node):
        plan = CufftPlan1D(n=4096, batch=64)
        total = plan.simulate(gpu)
        sock = node.socket(0)
        assert sock.memory.total_read_bytes == plan.bytes_in
        assert sock.memory.total_write_bytes == plan.bytes_out
        assert gpu.flops_executed == plan.flops
        assert node.clock == pytest.approx(total)

    def test_validation(self):
        with pytest.raises(GPUError):
            CufftPlan1D(n=0, batch=1)
