"""Differential tests: batch/sharded exact engines vs the scalar oracle.

DESIGN.md §6: the scalar per-access path of :class:`CacheSim` is the
oracle; the columnar ``access_batch`` path and the set-sharded engine
must reproduce its traffic, hit/miss counts, final cache state and
write-combining buffer *exactly* on every trace, both policies, any
chunking. The vectorized ``exact_trace`` emitters must likewise be
byte-identical to each kernel's scalar ``exact_accesses`` generator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.exact import ExactEngine, ShardedExactEngine
from repro.engine.loopnest import AffineAccess, LoopNest
from repro.engine.stream import BatchTrace
from repro.engine.tracecache import TraceCache, cached_exact_trace
from repro.errors import SimulationError
from repro.fft3d.decomp import LocalBlock
from repro.fft3d.resort import (
    S1CB,
    S1CFCombined,
    S1CFLoopNest1,
    S1CFLoopNest2,
    S1PB,
    S1PF,
    S2CB,
    S2CF,
    S2PB,
    S2PF,
)
from repro.kernels.blas import CappedGemv, Dot, Gemm
from repro.kernels.sparse import SpmvKernel, random_csr
from repro.kernels.stream import StreamKernel
from repro.machine.cache import CacheSim, expand_to_sectors
from repro.machine.config import CacheConfig

SMALL = CacheConfig(capacity_bytes=64 * 1024)


def full_state(sim):
    """Everything the oracle and the batch path must agree on."""
    return (
        sim.traffic.read_bytes,
        sim.traffic.write_bytes,
        sim.stats_hits,
        sim.stats_misses,
        sim.snapshot(),
        dict(sim._wcb),
    )


def scalar_replay(sim, addr, size, w, byp):
    for i in range(len(addr)):
        sim.access(int(addr[i]), int(size[i]), bool(w[i]),
                   bypass=bool(byp[i]))


# ----------------------------------------------------------------------
# hypothesis differential property
# ----------------------------------------------------------------------
trace_strategy = st.lists(
    st.tuples(
        st.integers(0, 400_000),        # addr
        st.integers(1, 200),            # size (spans sectors and lines)
        st.booleans(),                  # is_write
        st.booleans(),                  # bypass candidate
    ),
    min_size=1,
    max_size=300,
)


class TestBatchDifferential:
    @given(trace=trace_strategy,
           policy=st.sampled_from(["lru", "fifo"]),
           chunk=st.integers(7, 101))
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_scalar_oracle(self, trace, policy, chunk):
        addr = np.array([t[0] for t in trace], dtype=np.int64)
        size = np.array([t[1] for t in trace], dtype=np.int64)
        w = np.array([t[2] for t in trace], dtype=bool)
        byp = np.array([t[3] for t in trace], dtype=bool) & w

        oracle = CacheSim(SMALL, policy=policy)
        scalar_replay(oracle, addr, size, w, byp)
        batch = CacheSim(SMALL, policy=policy)
        batch.access_batch(addr, size, w, byp, chunk_size=chunk)
        assert full_state(batch) == full_state(oracle)

    @given(trace=st.lists(st.tuples(
        st.integers(-(1 << 30), 1 << 45),
        st.integers(1, 130), st.booleans(), st.booleans()),
        min_size=1, max_size=150),
        policy=st.sampled_from(["lru", "fifo"]))
    @settings(max_examples=30, deadline=None)
    def test_generic_path_negative_and_huge_addresses(self, trace, policy):
        # Outside the residency-bitmap window the batch path falls back
        # to full exact replay; it must still match the oracle.
        addr = np.array([t[0] for t in trace], dtype=np.int64)
        size = np.array([t[1] for t in trace], dtype=np.int64)
        w = np.array([t[2] for t in trace], dtype=bool)
        byp = np.array([t[3] for t in trace], dtype=bool) & w
        oracle = CacheSim(SMALL, policy=policy)
        scalar_replay(oracle, addr, size, w, byp)
        batch = CacheSim(SMALL, policy=policy)
        batch.access_batch(addr, size, w, byp, chunk_size=64)
        assert full_state(batch) == full_state(oracle)

    @given(seed=st.integers(0, 2**32 - 1),
           policy=st.sampled_from(["lru", "fifo"]))
    @settings(max_examples=15, deadline=None)
    def test_mixed_scalar_batch_interleaving(self, seed, policy):
        # Alternating scalar and batch phases exercises the residency
        # bitmap staleness protocol (scalar misses invalidate it).
        rng = np.random.default_rng(seed)
        oracle = CacheSim(SMALL, policy=policy)
        mixed = CacheSim(SMALL, policy=policy)
        for phase in range(4):
            n = 300
            addr = rng.integers(0, 150_000, n)
            size = rng.integers(1, 64, n)
            w = rng.random(n) < 0.5
            byp = np.zeros(n, dtype=bool)
            scalar_replay(oracle, addr, size, w, byp)
            if phase % 2 == 0:
                mixed.access_batch(addr, size, w, chunk_size=97)
            else:
                scalar_replay(mixed, addr, size, w, byp)
            if phase == 2:
                oracle.flush()
                mixed.flush()
        assert full_state(mixed) == full_state(oracle)

    def test_thrashing_cache_forces_evictions(self):
        # Tiny, low-associativity cache: every chunk evicts, driving
        # the turbulent full-replay classification.
        cfg = CacheConfig(capacity_bytes=4 * 1024, associativity=2)
        rng = np.random.default_rng(3)
        n = 4000
        addr = rng.integers(0, 256 * 1024, n)
        size = rng.integers(1, 129, n)
        w = rng.random(n) < 0.4
        byp = np.zeros(n, dtype=bool)
        for policy in ("lru", "fifo"):
            oracle = CacheSim(cfg, policy=policy)
            scalar_replay(oracle, addr, size, w, byp)
            batch = CacheSim(cfg, policy=policy)
            batch.access_batch(addr, size, w, chunk_size=256)
            assert full_state(batch) == full_state(oracle)

    def test_expand_to_sectors_matches_manual_split(self):
        addr = np.array([0, 60, 127, 128, 1000], dtype=np.int64)
        size = np.array([8, 8, 2, 64, 200], dtype=np.int64)
        w = np.array([False, True, False, True, False])
        c_addr, c_size, c_write, c_byp = expand_to_sectors(
            addr, size, w, None, 64)
        assert c_byp is None
        # Each expanded element stays within one sector.
        assert np.all(c_addr % 64 + c_size <= 64)
        assert int(c_size.sum()) == int(size.sum())
        # Per-access write flags survive the split.
        starts = np.flatnonzero(np.isin(c_addr, addr))
        assert c_write[starts[1]]


# ----------------------------------------------------------------------
# sharded engine
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_sharded_matches_batch_and_is_deterministic(self):
        kernel = Gemm(24)
        trace = kernel.exact_trace()
        ref = ExactEngine(SMALL).run_nest(kernel.streams(), trace)
        results = []
        for n_shards in (1, 2, 3, 5):
            eng = ShardedExactEngine(SMALL, n_shards=n_shards)
            got = eng.run_nest(kernel.streams(), trace)
            assert (got.read_bytes, got.write_bytes) == \
                (ref.read_bytes, ref.write_bytes), n_shards
            results.append((got.read_bytes, got.write_bytes,
                            eng.last_stats["hits"],
                            eng.last_stats["misses"]))
        assert len(set(results)) == 1  # identical across shard counts

    def test_sharded_with_bypassed_stores(self):
        # STREAM triad bypasses its stores: the WCB is simulated in
        # the parent, cached reads in the shards.
        kernel = StreamKernel(op="triad", n=2048)
        trace = kernel.exact_trace()
        ref = ExactEngine(SMALL).run_nest(kernel.streams(), trace)
        got = ShardedExactEngine(SMALL, n_shards=3).run_nest(
            kernel.streams(), trace)
        assert (got.read_bytes, got.write_bytes) == \
            (ref.read_bytes, ref.write_bytes)

    def test_sharded_rejects_scalar_traces_and_partial_flush(self):
        kernel = Dot(256)
        eng = ShardedExactEngine(SMALL, n_shards=2)
        with pytest.raises(SimulationError):
            eng.run_nest(kernel.streams(), kernel.exact_accesses())
        with pytest.raises(SimulationError):
            eng.run_nest(kernel.streams(), kernel.exact_trace(),
                         flush_at_end=False)

    def test_shard_count_clamped_to_sets(self):
        cfg = CacheConfig(capacity_bytes=4 * 1024, associativity=16)
        eng = ShardedExactEngine(cfg, n_shards=64)
        assert eng.n_shards <= cfg.n_sets


# ----------------------------------------------------------------------
# vectorized trace emitters == scalar generators
# ----------------------------------------------------------------------
BLOCK = LocalBlock(planes=4, rows=6, cols=8)

EMITTER_KERNELS = [
    Dot(777),
    Gemm(10),
    CappedGemv(m=9, n=7, p=3),
    StreamKernel(op="copy", n=500),
    StreamKernel(op="scale", n=500),
    StreamKernel(op="add", n=500),
    StreamKernel(op="triad", n=500),
    SpmvKernel(random_csr(40, 5, seed=1)),
    LoopNest(
        name="nest-dup-arrays",
        bounds=(5, 4, 3),
        accesses=[
            AffineAccess("A", coeffs=(4, 0, 1)),
            AffineAccess("A", coeffs=(0, 3, 1), offset=2),
            AffineAccess("B", coeffs=(0, 1, 4), is_write=True,
                         elem_bytes=4),
        ],
    ),
    S1CFLoopNest1(BLOCK),
    S1CFLoopNest2(BLOCK),
    S1CFCombined(BLOCK),
    S2CF(BLOCK),
    S1PF(BLOCK),
    S1CB(BLOCK),
    S1PB(BLOCK),
    S2PF(BLOCK),
    S2CB(BLOCK),
    S2PB(BLOCK),
]


class TestExactTraceEmitters:
    @pytest.mark.parametrize(
        "kernel", EMITTER_KERNELS, ids=lambda k: k.name)
    def test_trace_matches_scalar_generator(self, kernel):
        trace = kernel.exact_trace()
        ref = list(kernel.exact_accesses())
        assert len(trace) == len(ref)
        names = list(trace.streams)
        for i, acc in enumerate(ref):
            assert int(trace.addr[i]) == acc.addr, i
            assert int(trace.size[i]) == acc.size, i
            assert bool(trace.is_write[i]) == acc.is_write, i
            assert names[trace.stream_id[i]] == acc.stream, i

    @pytest.mark.parametrize(
        "kernel", [Gemm(8), StreamKernel(op="triad", n=300)],
        ids=lambda k: k.name)
    def test_engine_traffic_identical_scalar_vs_batch(self, kernel):
        scalar = ExactEngine(SMALL).run_nest(
            kernel.streams(), kernel.exact_accesses())
        batch = ExactEngine(SMALL).run_nest(
            kernel.streams(), kernel.exact_trace())
        assert (scalar.read_bytes, scalar.write_bytes) == \
            (batch.read_bytes, batch.write_bytes)


# ----------------------------------------------------------------------
# streamed-from-disk == in-RAM batch == scalar oracle
# ----------------------------------------------------------------------
#: One representative per kernel family (DESIGN.md §6.2): the chunked
#: disk-streaming path must agree with the in-RAM batch engine and the
#: scalar oracle on every emitter shape, including bypassed stores.
STORE_KERNELS = [
    Dot(777),
    Gemm(10),
    CappedGemv(m=9, n=7, p=3),
    StreamKernel(op="triad", n=500),
    SpmvKernel(random_csr(40, 5, seed=1)),
    LoopNest(
        name="nest-dup-arrays",
        bounds=(5, 4, 3),
        accesses=[
            AffineAccess("A", coeffs=(4, 0, 1)),
            AffineAccess("A", coeffs=(0, 3, 1), offset=2),
            AffineAccess("B", coeffs=(0, 1, 4), is_write=True,
                         elem_bytes=4),
        ],
    ),
    S2CF(BLOCK),
]


class TestStoredTraceDifferential:
    @pytest.mark.parametrize(
        "kernel", STORE_KERNELS, ids=lambda k: k.name)
    def test_streamed_from_disk_matches_oracle(self, kernel, tmp_path):
        from repro.engine.tracestore import TraceStore

        store = TraceStore(tmp_path / "store", verify="full")
        entry = store.get_or_create(kernel)

        scalar = ExactEngine(SMALL).run_nest(
            kernel.streams(), kernel.exact_accesses())
        batch = ExactEngine(SMALL).run_nest(
            kernel.streams(), kernel.exact_trace())
        # Tiny chunk_rows forces many chunks even on small traces.
        streamed = ExactEngine(SMALL).run_nest(
            kernel.streams(), entry, chunk_rows=257)
        entry.close()
        assert (streamed.read_bytes, streamed.write_bytes) == \
            (batch.read_bytes, batch.write_bytes) == \
            (scalar.read_bytes, scalar.write_bytes)

    @pytest.mark.parametrize(
        "kernel", [Gemm(10), StreamKernel(op="triad", n=500)],
        ids=lambda k: k.name)
    def test_sharded_from_disk_matches_batch(self, kernel, tmp_path):
        from repro.engine.tracestore import TraceStore

        store = TraceStore(tmp_path / "store", verify="full")
        entry = store.get_or_create(kernel)
        ref = ExactEngine(SMALL).run_nest(
            kernel.streams(), kernel.exact_trace())
        got = ShardedExactEngine(SMALL, n_shards=3).run_nest(
            kernel.streams(), entry, chunk_rows=509)
        entry.close()
        assert (got.read_bytes, got.write_bytes) == \
            (ref.read_bytes, ref.write_bytes)


# ----------------------------------------------------------------------
# trace memoization
# ----------------------------------------------------------------------
class TestTraceCache:
    def test_hit_returns_same_object(self):
        cache = TraceCache()
        k = Gemm(6)
        first = cache.get(k)
        second = cache.get(Gemm(6))  # same shape, fresh instance
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_shapes_distinct_entries(self):
        cache = TraceCache()
        assert cache.get(Gemm(6)) is not cache.get(Gemm(7))
        assert cache.misses == 2

    def test_entry_eviction_lru_order(self):
        cache = TraceCache(max_entries=2)
        a = cache.get(Gemm(5))
        cache.get(Gemm(6))
        cache.get(Dot(64))  # evicts Gemm(5)
        assert cache.get(Gemm(5)) is not a
        assert cache.stats()["entries"] == 2

    def test_byte_budget_and_oversized_traces(self):
        tiny = TraceCache(max_bytes=1)  # nothing fits
        k = Dot(128)
        t1 = tiny.get(k)
        t2 = tiny.get(k)
        assert t1 is not t2  # uncached, regenerated
        assert tiny.stats()["bytes"] == 0

    def test_global_helper(self):
        trace = cached_exact_trace(Gemm(4))
        assert isinstance(trace, BatchTrace)
        assert cached_exact_trace(Gemm(4)) is trace
