"""Multi-component timeline profiler."""

import pytest

from repro.errors import ConfigurationError
from repro.measure.timeline import MultiComponentProfiler, Step, Timeline, TimelineSample


class TestProfiler:
    def _steps(self, node, traffic=1 << 20, dt=0.01, n=3, label="work"):
        def run():
            node.socket(0).record_traffic(read_bytes=traffic,
                                          write_bytes=traffic // 2)
            node.advance(dt, background=False)

        return [Step(label, run) for _ in range(n)]

    def test_rates_computed_per_step(self, quiet_summit_papi,
                                     quiet_summit_node):
        profiler = MultiComponentProfiler(quiet_summit_papi, socket_id=0)
        tl = profiler.profile(self._steps(quiet_summit_node))
        assert len(tl.samples) == 3
        for s in tl.samples:
            assert s.mem_read_rate == pytest.approx((1 << 20) / 0.01,
                                                    rel=0.05)
            assert s.mem_write_rate == pytest.approx((1 << 19) / 0.01,
                                                     rel=0.05)
            assert s.gpu_power_w == pytest.approx(40.0, rel=0.01)

    def test_steps_must_advance_clock(self, quiet_summit_papi):
        profiler = MultiComponentProfiler(quiet_summit_papi)
        with pytest.raises(ConfigurationError):
            profiler.profile([Step("noop", lambda: None)])

    def test_gpu_power_averaged_over_window(self, quiet_summit_papi,
                                            quiet_summit_node):
        gpu = quiet_summit_node.gpus_on_socket(0)[0]

        def burst():
            quiet_summit_node.socket(0).record_traffic(read_bytes=64)
            gpu.execute(gpu.config.flops * 0.005)  # 5 ms at peak
            quiet_summit_node.advance(0.005, background=False)

        profiler = MultiComponentProfiler(quiet_summit_papi)
        tl = profiler.profile([Step("gpu", burst)])
        # Half the 10 ms window at peak, half idle.
        expected = (300.0 + 40.0) / 2
        assert tl.samples[0].gpu_power_w == pytest.approx(expected,
                                                          rel=0.05)

    def test_network_rate(self, quiet_summit_papi, quiet_summit_node):
        nic = quiet_summit_node.nics[0]

        def xfer():
            quiet_summit_node.socket(0).record_traffic(read_bytes=64)
            nic.record_recv(4 << 20)
            quiet_summit_node.advance(0.01, background=False)

        profiler = MultiComponentProfiler(quiet_summit_papi)
        tl = profiler.profile([Step("net", xfer)])
        assert tl.samples[0].net_recv_rate == pytest.approx(
            (4 << 20) / 0.01, rel=0.05)

    def test_cpu_power_sampled_from_rapl(self, quiet_summit_papi,
                                         quiet_summit_node):
        from repro.papi.components.rapl import IDLE_PACKAGE_W

        profiler = MultiComponentProfiler(quiet_summit_papi)
        tl = profiler.profile(self._steps(quiet_summit_node, n=1))
        # Idle socket during the step (work is injected, no busy cores).
        assert tl.samples[0].cpu_power_w == pytest.approx(IDLE_PACKAGE_W,
                                                          rel=0.02)

    def test_works_without_devices(self, tellico_papi, tellico_node):
        profiler = MultiComponentProfiler(tellico_papi, use_pcp=False)

        def run():
            tellico_node.socket(0).record_traffic(read_bytes=4096)
            tellico_node.advance(0.001, background=False)

        tl = profiler.profile([Step("cpu-only", run)])
        assert tl.samples[0].gpu_power_w == 0.0
        assert tl.samples[0].net_recv_rate == 0.0
        assert tl.samples[0].mem_read_rate > 0


class TestTimeline:
    def _timeline(self):
        return Timeline(samples=[
            TimelineSample("a", 0.0, 1.0, mem_read_rate=10.0,
                           mem_write_rate=5.0, gpu_power_w=100.0,
                           net_recv_rate=0.0),
            TimelineSample("b", 1.0, 3.0, mem_read_rate=1.0,
                           mem_write_rate=1.0, gpu_power_w=40.0,
                           net_recv_rate=8.0),
            TimelineSample("a", 3.0, 4.0, mem_read_rate=20.0,
                           mem_write_rate=10.0, gpu_power_w=100.0,
                           net_recv_rate=0.0),
        ])

    def test_series_and_labels(self):
        tl = self._timeline()
        assert tl.series("mem_read_rate") == [10.0, 1.0, 20.0]
        assert tl.labels() == ["a", "b", "a"]

    def test_phase_selection(self):
        tl = self._timeline()
        assert len(tl.phase("a")) == 2

    def test_phase_totals(self):
        totals = self._timeline().phase_totals()
        assert totals["a"]["seconds"] == pytest.approx(2.0)
        assert totals["a"]["read_bytes"] == pytest.approx(30.0)
        assert totals["b"]["net_recv_bytes"] == pytest.approx(16.0)
        assert totals["a"]["gpu_energy_j"] == pytest.approx(200.0)

    def test_sample_bytes_properties(self):
        s = self._timeline().samples[1]
        assert s.duration == pytest.approx(2.0)
        assert s.mem_read_bytes == pytest.approx(2.0)
