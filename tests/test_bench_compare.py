"""Unit tests for report assembly, validation, and baseline gating."""

import pytest

from repro.bench import (
    Thresholds,
    build_report,
    compare_reports,
    format_comparison,
    load_report,
    report_filename,
    validate_report,
    write_report,
)
from repro.bench.compare import (
    WALL_ABS_SLACK_S,
    is_deviation_metric,
    is_info_metric,
    resolve_thresholds,
)
from repro.errors import ConfigurationError


def record(name, wall=1.0, rss=50_000, metrics=None, status="ok",
           error=None):
    return {
        "name": name,
        "tags": ["selftest"],
        "status": status,
        "wall_s": wall if status == "ok" else None,
        "peak_rss_kb": rss,
        "metrics": dict(metrics or {}) if status == "ok" else {},
        "error": error,
    }


def report(records, calibration=None):
    environment = {"python": "3.x"}
    if calibration is not None:
        environment["calibration_s"] = calibration
    return build_report(
        records, config={"seed": 1}, sha="f" * 40,
        environment=environment,
    )


# ---------------------------------------------------------------- report


def test_build_report_counts_and_filename(tmp_path):
    rep = report([
        record("a", wall=1.5, metrics={"m": 1.0}),
        record("b", status="timeout", error="deadline"),
    ])
    assert rep["summary"] == {
        "total": 2, "ok": 1, "error": 0, "timeout": 1, "crashed": 0,
        "wall_s": 1.5,
    }
    assert report_filename(rep) == f"BENCH_{'f' * 12}.json"
    path = write_report(rep, tmp_path)
    assert path.name == report_filename(rep)
    assert load_report(path)["summary"]["total"] == 2


@pytest.mark.parametrize(
    "mutate, detail",
    [
        (lambda r: r.update(schema="bogus/9"), "schema"),
        (lambda r: r["benchmarks"].append(
            dict(record("a"), name="a")), "duplicate"),
        (lambda r: r["benchmarks"][0].pop("metrics"), "missing keys"),
        (lambda r: r["benchmarks"][0].update(status="exploded"),
         "bad status"),
        (lambda r: r["benchmarks"][0]["metrics"].update(m=True),
         "str -> number"),
        (lambda r: r["summary"].update(total=99), "summary.total"),
        (lambda r: r["benchmarks"][0].update(wall_s="fast"),
         "number or null"),
    ],
)
def test_validate_report_rejects_drift(mutate, detail):
    rep = report([record("a", metrics={"m": 1.0})])
    mutate(rep)
    with pytest.raises(ConfigurationError, match="invalid benchmark"):
        validate_report(rep)


def test_load_report_missing_file(tmp_path):
    with pytest.raises(ConfigurationError, match="cannot read"):
        load_report(tmp_path / "absent.json")


# ------------------------------------------------------------- comparing


def test_identical_reports_pass():
    base = report([record("a", metrics={"m": 1.0, "x_dev": 0.1})])
    result = compare_reports(base, base)
    assert result.ok
    assert result.regressions == []
    assert "OK" in format_comparison(result)


def test_wall_regression_beyond_threshold():
    base = report([record("a", wall=2.0)])
    cur = report([record("a", wall=3.0)])
    result = compare_reports(cur, base)
    assert [r.kind for r in result.regressions] == ["wall"]
    assert "wall time" in str(result.regressions[0])


def test_small_wall_jitter_is_absorbed_by_absolute_slack():
    base = report([record("a", wall=0.02)])
    cur = report([record("a", wall=0.02 + WALL_ABS_SLACK_S * 0.9)])
    assert compare_reports(cur, base).ok


def test_calibration_rescales_wall_threshold():
    base = report([record("a", wall=2.0)], calibration=0.1)
    cur = report([record("a", wall=3.0)], calibration=0.2)
    scaled = compare_reports(cur, base)
    assert scaled.ok
    assert scaled.wall_scale == pytest.approx(2.0)
    unscaled = compare_reports(
        cur, base, Thresholds(use_calibration=False)
    )
    assert [r.kind for r in unscaled.regressions] == ["wall"]


def test_calibration_ratio_is_clamped():
    base = report([record("a", wall=1.0)], calibration=0.001)
    cur = report([record("a", wall=1.0)], calibration=10.0)
    assert compare_reports(cur, base).wall_scale == 4.0


def test_deviation_metric_is_one_sided():
    base = report([record("a", metrics={"read_dev": 0.10})])
    better = report([record("a", metrics={"read_dev": 0.0})])
    worse = report([record("a", metrics={"read_dev": 0.30})])
    assert compare_reports(better, base).ok
    result = compare_reports(worse, base)
    assert [r.kind for r in result.regressions] == ["metric"]
    assert "worsened" in result.regressions[0].detail


def test_plain_metric_gates_drift_in_both_directions():
    base = report([record("a", metrics={"events": 100.0})])
    for drifted in (80.0, 120.0):
        cur = report([record("a", metrics={"events": drifted})])
        result = compare_reports(cur, base)
        assert [r.kind for r in result.regressions] == ["metric"]
        assert "drifted" in result.regressions[0].detail
    within = report([record("a", metrics={"events": 105.0})])
    assert compare_reports(within, base).ok


def test_info_metrics_never_gate():
    # Machine-dependent observability readings: free to drift wildly,
    # disappear, or appear without tripping the determinism gate.
    base = report([record("a", metrics={"m": 1.0,
                                        "info_utilization": 0.9,
                                        "info_queue_depth": 3.0})])
    cur = report([record("a", metrics={"m": 1.0,
                                       "info_utilization": 0.01,
                                       "info_new_reading": 7.0})])
    assert compare_reports(cur, base).ok
    assert is_info_metric("info_utilization")
    assert not is_info_metric("utilization_info")


def test_disappeared_metric_is_a_regression():
    base = report([record("a", metrics={"m": 1.0, "gone": 2.0})])
    cur = report([record("a", metrics={"m": 1.0})])
    result = compare_reports(cur, base)
    assert [r.kind for r in result.regressions] == ["metric"]
    assert "disappeared" in result.regressions[0].detail


def test_missing_benchmark_is_a_regression_new_one_is_a_note():
    base = report([record("a"), record("b")])
    cur = report([record("b"), record("c")])
    result = compare_reports(cur, base)
    assert [(r.benchmark, r.kind) for r in result.regressions] == [
        ("a", "missing")
    ]
    assert any("new benchmark" in note for note in result.notes)


def test_status_regression_carries_error_hint():
    base = report([record("a")])
    cur = report([
        record("a", status="error",
               error="Traceback...\nValueError: boom"),
    ])
    result = compare_reports(cur, base)
    assert [r.kind for r in result.regressions] == ["status"]
    assert "ValueError: boom" in result.regressions[0].detail


def test_non_ok_baseline_entry_is_skipped_with_note():
    base = report([record("a", status="timeout", error="deadline")])
    cur = report([record("a", status="crashed", error="boom")])
    result = compare_reports(cur, base)
    assert result.ok
    assert any("comparison skipped" in note for note in result.notes)


def test_rss_gates_only_when_enabled():
    base = report([record("a", rss=10_000)])
    cur = report([record("a", rss=30_000)])
    assert compare_reports(cur, base).ok
    result = compare_reports(cur, base, Thresholds(rss_rel=0.5))
    assert [r.kind for r in result.regressions] == ["rss"]


def test_resolve_thresholds_layers_baseline_and_overrides():
    base = report([record("a")])
    base["thresholds"] = {"wall_rel": 0.5, "metric_rel": 0.2}
    resolved = resolve_thresholds(
        base, {"metric_rel": 0.05, "metric_abs": None}
    )
    assert resolved.wall_rel == 0.5
    assert resolved.metric_rel == 0.05
    assert resolved.metric_abs == Thresholds().metric_abs
    assert Thresholds.from_dict(resolved.to_dict()) == resolved


def test_deviation_suffix_convention():
    for name in ("read_dev", "one_rep_err", "pcp_gap", "tail_excess"):
        assert is_deviation_metric(name)
    for name in ("noise_floor", "events", "ratio", "device"):
        assert not is_deviation_metric(name)
