"""PMDA, PMCD daemon and client context — the full PCP path."""

import pytest

from repro.errors import PCPError
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.pcp.client import PmapiContext
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pcp.pmda import PerfeventPMDA, make_pmid, pmid_domain
from repro.pcp.protocol import (
    ChildrenRequest,
    FetchRequest,
    LookupRequest,
    PCPStatus,
)


@pytest.fixture
def node():
    return Node(SUMMIT, seed=2, noise=QUIET)


@pytest.fixture
def pmcd(node):
    return start_pmcd_for_node(node)


class TestPmid:
    def test_roundtrip(self):
        pmid = make_pmid(127, 42)
        assert pmid_domain(pmid) == 127

    def test_range_checks(self):
        with pytest.raises(PCPError):
            make_pmid(1000, 0)
        with pytest.raises(PCPError):
            make_pmid(1, 1 << 23)


class TestPerfeventPMDA:
    def test_metric_table_covers_all_channels(self, node):
        pmda = PerfeventPMDA(node)
        names = [n for n, _ in pmda.metric_table()]
        assert len(names) == 16
        assert ("perfevent.hwcounters.nest_mba0_imc."
                "PM_MBA0_READ_BYTES.value") in names

    def test_fetch_has_instance_per_socket(self, node):
        pmda = PerfeventPMDA(node)
        pmid = pmda.metric_table()[0][1]
        values = pmda.fetch(pmid)
        assert set(values) == {"cpu87", "cpu175"}

    def test_fetch_reads_privileged_despite_user(self, node):
        # The user on Summit is unprivileged; the PMDA is not.
        assert not node.user_privileged
        pmda = PerfeventPMDA(node)
        node.socket(0).record_traffic(read_bytes=8 * 64)
        pmid = pmda.metric_table()[0][1]
        assert pmda.fetch(pmid)["cpu87"] == 64

    def test_fetch_unknown_pmid(self, node):
        pmda = PerfeventPMDA(node)
        with pytest.raises(PCPError):
            pmda.fetch(make_pmid(127, 9999))


class TestPMCD:
    def test_lookup_and_fetch(self, pmcd, node):
        name = ("perfevent.hwcounters.nest_mba0_imc."
                "PM_MBA0_READ_BYTES.value")
        response = pmcd.handle(LookupRequest(names=(name,)))
        assert response.status == PCPStatus.OK
        pmid = response.pmids[0]
        node.socket(0).record_traffic(read_bytes=8 * 64)
        fetch = pmcd.handle(FetchRequest(pmids=(pmid,)))
        assert fetch.status == PCPStatus.OK
        assert fetch.metrics[0].values["cpu87"] == 64

    def test_lookup_partial_failure(self, pmcd):
        response = pmcd.handle(LookupRequest(names=("no.such.metric",)))
        assert response.status == PCPStatus.PM_ERR_NAME
        assert response.name_status[0] == PCPStatus.PM_ERR_NAME

    def test_fetch_unknown_pmid(self, pmcd):
        response = pmcd.handle(FetchRequest(pmids=(make_pmid(99, 1),)))
        assert response.status == PCPStatus.PM_ERR_PMID

    def test_children(self, pmcd):
        response = pmcd.handle(ChildrenRequest(prefix="perfevent"))
        assert response.status == PCPStatus.OK
        assert response.children == ("hwcounters",)

    def test_duplicate_domain_rejected(self, pmcd, node):
        with pytest.raises(PCPError):
            pmcd.register_agent(PerfeventPMDA(node))

    def test_stopped_daemon_refuses(self, pmcd):
        pmcd.running = False
        response = pmcd.handle(LookupRequest(names=("x",)))
        assert response.status == PCPStatus.PM_ERR_PERMISSION

    def test_fetch_count_increments(self, pmcd):
        before = pmcd.fetch_count
        pmcd.handle(FetchRequest(pmids=()))
        assert pmcd.fetch_count == before + 1


class TestClientContext:
    def test_fetch_one(self, pmcd, node):
        client = PmapiContext(pmcd, node=node)
        node.socket(1).record_traffic(write_bytes=8 * 64)
        value = client.fetch_one(
            "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value",
            "cpu175")
        assert value == 64

    def test_unknown_name_raises(self, pmcd, node):
        client = PmapiContext(pmcd, node=node)
        with pytest.raises(PCPError):
            client.lookup_names(["bogus.metric"])

    def test_unknown_instance_raises(self, pmcd, node):
        client = PmapiContext(pmcd, node=node)
        with pytest.raises(PCPError):
            client.fetch_one(
                "perfevent.hwcounters.nest_mba0_imc."
                "PM_MBA0_READ_BYTES.value", "cpu999")

    def test_round_trips_advance_clock(self, node):
        pmcd = start_pmcd_for_node(node, round_trip_seconds=1e-3)
        client = PmapiContext(pmcd, node=node)
        client.traverse("perfevent")
        client.lookup_names([
            "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value"])
        assert node.clock == pytest.approx(2e-3)
        assert client.round_trips == 2

    def test_traverse(self, pmcd, node):
        client = PmapiContext(pmcd, node=node)
        metrics = client.traverse("perfevent")
        assert len(metrics) == 16

    def test_children_via_client(self, pmcd):
        client = PmapiContext(pmcd)
        assert client.children("perfevent.hwcounters.nest_mba0_imc") == \
            ["PM_MBA0_READ_BYTES", "PM_MBA0_WRITE_BYTES"]

    def test_free_running_client_no_clock(self, pmcd, node):
        client = PmapiContext(pmcd, node=None)
        client.traverse("perfevent")
        assert node.clock == 0.0
