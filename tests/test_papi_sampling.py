"""Sampling profiler: config validation, estimator laws, component.

Covers the SPE/PEBS-style sampling observer (repro.papi.sampling):

* knob validation (constructor and environment, parse-time errors
  like the engine's envconfig);
* exactness at period 1 against the exact engine, including the
  write-combining (bypassed store) path;
* the monotone-in-expectation accuracy law (hypothesis, averaged
  over seeds — single draws are noisy by design);
* skid semantics, segmentation invariance, determinism;
* the PAPI component + event-set integration and the pipelined
  engine's segment tap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.envconfig import (
    SAMPLE_JITTER_ENV,
    SAMPLE_PERIOD_ENV,
    SAMPLE_SKID_ENV,
    nonnegative_int,
)
from repro.engine.exact import ExactEngine
from repro.engine.pipeline import PipelinedExactEngine
from repro.errors import PapiNoEvent, SimulationError
from repro.kernels import Gemm, StreamKernel
from repro.machine.config import CacheConfig
from repro.papi import Papi
from repro.papi.components.sampling import SamplingComponent
from repro.papi.sampling import (
    LEVEL_CACHE,
    LEVEL_MEMORY,
    LEVEL_WCB,
    SamplingConfig,
    SamplingObserver,
)
from repro.units import KIB

SMALL_CACHE = CacheConfig(capacity_bytes=16 * KIB)


def _exact(kernel, cache):
    return ExactEngine(cache).run_nest(
        list(kernel.streams()), kernel.exact_trace())


def _observe(kernel, cache, **cfg):
    observer = SamplingObserver(cache, kernel.streams(),
                                SamplingConfig(**cfg))
    return observer.observe_kernel(kernel)


class TestConfigValidation:
    @pytest.mark.parametrize("value", [0, -1, "abc", "nan", float("nan")])
    def test_period_rejects_nonpositive_and_unparsable(self, value):
        with pytest.raises(SimulationError, match="period"):
            SamplingConfig(period=value)

    @pytest.mark.parametrize("field", ["skid", "skid_jitter",
                                       "period_jitter", "store_jitter"])
    def test_nonnegative_fields_reject_negative(self, field):
        with pytest.raises(SimulationError, match=field):
            SamplingConfig(period=64, store_period=8, **{field: -1})

    def test_jitter_must_stay_below_period(self):
        with pytest.raises(SimulationError, match="period_jitter"):
            SamplingConfig(period=8, period_jitter=8)
        with pytest.raises(SimulationError, match="store_jitter"):
            SamplingConfig(period=64, store_period=4, store_jitter=7)

    def test_store_period_rejects_zero(self):
        with pytest.raises(SimulationError, match="store_period"):
            SamplingConfig(period=64, store_period=0)

    def test_env_defaults_resolve(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_PERIOD_ENV, "32")
        monkeypatch.setenv(SAMPLE_SKID_ENV, "3")
        monkeypatch.setenv(SAMPLE_JITTER_ENV, "2")
        cfg = SamplingConfig()
        assert cfg.period == 32
        assert cfg.skid == 3
        assert cfg.skid_jitter == 2

    @pytest.mark.parametrize("env,bad", [
        (SAMPLE_PERIOD_ENV, "0"),
        (SAMPLE_PERIOD_ENV, "abc"),
        (SAMPLE_PERIOD_ENV, "nan"),
        (SAMPLE_SKID_ENV, "-1"),
        (SAMPLE_JITTER_ENV, "2.5"),
    ])
    def test_env_parse_errors_name_the_variable(self, monkeypatch,
                                                env, bad):
        monkeypatch.setenv(env, bad)
        with pytest.raises(SimulationError, match=env):
            SamplingConfig()

    def test_explicit_args_override_env(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_PERIOD_ENV, "bogus")
        # The env knob is only consulted when the field is left unset.
        assert SamplingConfig(period=16).period == 16

    def test_nonnegative_int_helper(self):
        assert nonnegative_int(0, "x") == 0
        assert nonnegative_int("7", "x") == 7
        with pytest.raises(SimulationError, match="x"):
            nonnegative_int(-1, "x")
        with pytest.raises(SimulationError, match="x"):
            nonnegative_int("y", "x")


class TestExactnessAtPeriodOne:
    @pytest.mark.parametrize("kernel,cache", [
        (Gemm(32), SMALL_CACHE),
        # stream stores bypass the cache: exercises the WCB estimator.
        (StreamKernel("triad", 2048), SMALL_CACHE),
        (StreamKernel("copy", 1024), CacheConfig(capacity_bytes=4 * KIB)),
    ])
    def test_period_one_reproduces_exact_engine(self, kernel, cache):
        ref = _exact(kernel, cache)
        obs = _observe(kernel, cache, period=1, period_jitter=0,
                       store_period=1, store_jitter=0, seed=5)
        assert obs.exact_traffic().read_bytes == ref.read_bytes
        assert obs.exact_traffic().write_bytes == ref.write_bytes
        est = obs.estimated_traffic()
        assert est.read_bytes == ref.read_bytes
        assert est.write_bytes == ref.write_bytes

    def test_replay_matches_exact_engine_when_sampling(self):
        # The replay stays exact at any sample rate — only the
        # *estimates* are statistical.
        kernel = Gemm(24)
        ref = _exact(kernel, SMALL_CACHE)
        obs = _observe(kernel, SMALL_CACHE, period=64, seed=2)
        assert obs.exact_traffic().read_bytes == ref.read_bytes
        assert obs.exact_traffic().write_bytes == ref.write_bytes


class TestEstimators:
    def test_segmentation_is_invisible(self):
        kernel = Gemm(24)
        fine = _observe(kernel, SMALL_CACHE, period=16, seed=9)
        # observe_kernel with a tiny target re-chunks the emitter;
        # triggers live on global axes so nothing may move.
        coarse = SamplingObserver(
            SMALL_CACHE, kernel.streams(),
            SamplingConfig(period=16, seed=9))
        for segment in kernel.segments(500):
            coarse.observe(segment)
        coarse.finish()
        assert fine.estimated_traffic() == coarse.estimated_traffic()
        assert np.array_equal(fine.records()["row"],
                              coarse.records()["row"])

    def test_same_seed_is_deterministic(self):
        kernel = Gemm(24)
        a = _observe(kernel, SMALL_CACHE, period=32, seed=11)
        b = _observe(kernel, SMALL_CACHE, period=32, seed=11)
        assert a.estimated_traffic() == b.estimated_traffic()
        assert np.array_equal(a.records()["addr"], b.records()["addr"])

    def test_different_seed_moves_samples(self):
        kernel = Gemm(24)
        a = _observe(kernel, SMALL_CACHE, period=32, seed=1)
        b = _observe(kernel, SMALL_CACHE, period=32, seed=2)
        assert not np.array_equal(a.records()["row"], b.records()["row"])

    def test_levels_partition_records(self):
        kernel = StreamKernel("triad", 2048)
        obs = _observe(kernel, SMALL_CACHE, period=8, seed=3)
        levels = obs.records()["level"]
        assert set(np.unique(levels)) <= {LEVEL_CACHE, LEVEL_MEMORY,
                                          LEVEL_WCB}
        # Triad's store stream bypasses: its samples must be WCB.
        assert (levels == LEVEL_WCB).any()

    def test_max_records_cap_counts_drops(self):
        kernel = Gemm(24)
        obs = _observe(kernel, SMALL_CACHE, period=16, seed=4,
                       max_records=10)
        assert obs.records_kept == 10
        assert obs.records_dropped > 0
        assert len(obs.records()["addr"]) == 10

    def test_hot_lines_ranked_and_aligned(self):
        kernel = Gemm(32)
        obs = _observe(kernel, SMALL_CACHE, period=8, seed=6)
        hot = obs.hot_lines(top=5)
        assert 0 < len(hot) <= 5
        bytes_ranked = [line["est_read_bytes"] for line in hot]
        assert bytes_ranked == sorted(bytes_ranked, reverse=True)
        for line in hot:
            assert line["line_addr"] % SMALL_CACHE.line_bytes == 0
            assert line["stream"] in {"A", "B", "C"}

    def test_observe_after_finish_raises(self):
        kernel = Gemm(16)
        obs = _observe(kernel, SMALL_CACHE, period=8, seed=1)
        with pytest.raises(SimulationError, match="finish"):
            obs.observe(kernel.exact_trace())


class TestSkid:
    def test_fixed_skid_shifts_records(self):
        kernel = Gemm(24)
        base = _observe(kernel, SMALL_CACHE, period=32, seed=7,
                        skid=0, skid_jitter=0)
        skidded = _observe(kernel, SMALL_CACHE, period=32, seed=7,
                           skid=5, skid_jitter=0)
        rows = base.records()["row"]
        srows = skidded.records()["row"]
        # Same trigger stream; every surviving record trails by
        # exactly the fixed skid (tail triggers may drop off the end).
        n = min(len(rows), len(srows))
        assert n > 0
        assert np.array_equal(srows[:n], rows[:n] + 5)

    def test_skid_past_trace_end_is_dropped_and_counted(self):
        kernel = StreamKernel("copy", 512)
        obs = _observe(kernel, SMALL_CACHE, period=4, seed=1,
                       skid=10_000, skid_jitter=0)
        assert obs.n_samples == 0
        assert obs.skid_dropped > 0

    def test_skid_jitter_is_seeded(self):
        kernel = Gemm(24)
        a = _observe(kernel, SMALL_CACHE, period=32, seed=13,
                     skid=2, skid_jitter=8)
        b = _observe(kernel, SMALL_CACHE, period=32, seed=13,
                     skid=2, skid_jitter=8)
        assert np.array_equal(a.records()["row"], b.records()["row"])


class TestMonotoneAccuracy:
    @given(base_seed=st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_error_decreases_in_expectation_with_rate(self, base_seed):
        # stream-copy against a tiny cache: every 8th read misses and
        # every 8th store completes a WCB sector, so sampling events
        # are dense and the error scale is set by the rate, not by
        # rare-event luck. Averaged over seeds: 16x more samples must
        # not estimate worse (up to slack for residual noise).
        kernel = StreamKernel("copy", 4096)
        cache = CacheConfig(capacity_bytes=2 * KIB)

        def mean_error(period):
            errors = []
            for offset in range(4):
                obs = _observe(kernel, cache, period=period,
                               seed=base_seed * 7 + offset)
                errors.append(obs.relative_errors()["total"])
            return sum(errors) / len(errors)

        assert mean_error(4) <= mean_error(64) + 0.02


class TestComponent:
    def test_papi_registers_component_when_observer_passed(
            self, summit_node):
        kernel = Gemm(24)
        observer = SamplingObserver(SMALL_CACHE, kernel.streams(),
                                    SamplingConfig(period=16, seed=1))
        papi = Papi(summit_node, sampling_observer=observer)
        assert "sampling" in papi.component_names()
        available, _ = papi.component("sampling").is_available()
        assert available
        events = papi.component("sampling").list_events()
        assert "sampling:::EST_TOTAL_BYTES" in events

        es = papi.create_eventset()
        es.add_events(["sampling:::EST_READ_BYTES",
                       "sampling:::SAMPLES",
                       "sampling:::ACCESSES_OBSERVED"])
        es.start()
        observer.observe_kernel(kernel)
        counts = es.stop_dict()
        est = observer.estimated_traffic()
        assert counts["sampling:::EST_READ_BYTES"] == int(
            round(est.read_bytes))
        assert counts["sampling:::SAMPLES"] == observer.n_samples
        assert (counts["sampling:::ACCESSES_OBSERVED"]
                == observer.accesses_observed)

    def test_papi_without_observer_has_no_sampling_component(
            self, summit_node):
        assert "sampling" not in Papi(summit_node).component_names()

    def test_unattached_component_reports_unavailable(self):
        component = SamplingComponent()
        available, reason = component.is_available()
        assert not available
        assert "attach" in reason
        # Events still open (PAPI semantics) and read as zero.
        handle = component.open_event("sampling:::SAMPLES")
        assert handle.read() == 0

    def test_attach_binds_observer(self):
        component = SamplingComponent()
        kernel = Gemm(16)
        observer = SamplingObserver(SMALL_CACHE, kernel.streams(),
                                    SamplingConfig(period=8, seed=1))
        observer.observe_kernel(kernel)
        component.attach(observer)
        assert component.is_available()[0]
        handle = component.open_event("sampling:::STORE_SAMPLES")
        assert handle.read() == observer.n_store_samples

    def test_unknown_event_raises(self):
        with pytest.raises(PapiNoEvent, match="NO_SUCH"):
            SamplingComponent().open_event("sampling:::NO_SUCH")


class TestPipelineTap:
    @pytest.mark.parametrize("kernel", [Gemm(24),
                                        StreamKernel("triad", 2048)])
    def test_segment_tap_profiles_pipelined_run(self, kernel):
        observer = SamplingObserver(SMALL_CACHE, kernel.streams(),
                                    SamplingConfig(period=32, seed=3))
        with PipelinedExactEngine(SMALL_CACHE, n_workers=0) as engine:
            engine.segment_tap = observer.observe
            traffic = engine.run_kernel(kernel)
        observer.finish()
        assert observer.accesses_observed == len(kernel.exact_trace())
        # The observer's replay agrees with the engine byte for byte.
        assert observer.exact_traffic().read_bytes == traffic.read_bytes
        assert (observer.exact_traffic().write_bytes
                == traffic.write_bytes)
        assert observer.n_samples > 0


# ----------------------------------------------------------------------
# vectorized replay: bit-identical to the scalar oracle
# ----------------------------------------------------------------------
def _pair(kernel, cache, **cfg):
    """Run the same kernel through both replay implementations."""
    out = []
    for vectorized in (False, True):
        obs = SamplingObserver(cache, kernel.streams(),
                               SamplingConfig(**cfg),
                               vectorized=vectorized)
        obs.observe_kernel(kernel)
        out.append(obs)
    return out


def _assert_identical(scalar, vector):
    s_rec, v_rec = scalar.records(), vector.records()
    for field in ("row", "addr", "size", "stream_id", "is_write",
                  "level", "channel"):
        np.testing.assert_array_equal(v_rec[field], s_rec[field], field)
    for attr in ("n_samples", "n_store_samples", "accesses_observed",
                 "stores_observed", "records_kept", "records_dropped",
                 "skid_dropped"):
        assert getattr(vector, attr) == getattr(scalar, attr), attr
    assert vector.estimated_traffic() == scalar.estimated_traffic()
    assert vector.exact_traffic() == scalar.exact_traffic()
    assert vector.hot_lines(10) == scalar.hot_lines(10)


class TestVectorizedReplay:
    @pytest.mark.parametrize("kernel,cache,cfg", [
        (Gemm(24), SMALL_CACHE,
         dict(period=8, seed=3)),
        (Gemm(24), SMALL_CACHE,
         dict(period=8, period_jitter=3, store_period=4, store_jitter=1,
              skid=7, skid_jitter=5, seed=17)),
        # Bypassed stores: WCB plane + LEVEL_WCB samples.
        (StreamKernel("triad", 2048), SMALL_CACHE,
         dict(period=8, store_period=2, skid=3, skid_jitter=2, seed=5)),
        (StreamKernel("copy", 1024), CacheConfig(capacity_bytes=4 * KIB),
         dict(period=1, store_period=1, seed=1)),
        # Record-cap truncation must drop the same tail.
        (Gemm(24), SMALL_CACHE,
         dict(period=16, seed=4, max_records=25)),
    ], ids=["gemm", "gemm-jitter-skid", "triad-wcb", "copy-period1",
            "max-records"])
    def test_bit_identical_to_scalar_oracle(self, kernel, cache, cfg):
        scalar, vector = _pair(kernel, cache, **cfg)
        _assert_identical(scalar, vector)

    @given(period=st.integers(1, 48),
           skid=st.integers(0, 40),
           skid_jitter=st.integers(0, 20),
           seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_bit_identical_under_random_knobs(self, period, skid,
                                              skid_jitter, seed):
        jitter = min(period - 1, 3)
        scalar, vector = _pair(
            Gemm(16), SMALL_CACHE, period=period, period_jitter=jitter,
            store_period=max(1, period // 2), skid=skid,
            skid_jitter=skid_jitter, seed=seed)
        _assert_identical(scalar, vector)

    def test_wide_rows_take_span_guard_fallback(self):
        # A row spanning >= n_sets cache lines can self-interfere
        # within one set, which the batched probe cannot see; such
        # segments must fall back to the scalar slice replay — and
        # still match the oracle bit for bit.
        from repro.engine.stream import BatchTrace, StreamDecl

        tiny = CacheConfig(capacity_bytes=1024, line_bytes=128,
                           associativity=2)  # 4 sets
        assert tiny.n_sets == 4
        rng = np.random.default_rng(42)
        n = 600
        trace = BatchTrace(
            streams=("a",),
            stream_id=np.zeros(n, dtype=np.int16),
            addr=rng.integers(0, 1 << 14, size=n),
            size=rng.integers(700, 1000, size=n),  # spans 6-8 lines
            is_write=rng.random(n) < 0.3,
        )
        decl = StreamDecl(name="a", is_write=False, n_accesses=n,
                          elem_bytes=8, stride_bytes=8,
                          footprint_bytes=n * 8)
        results = []
        for vectorized in (False, True):
            obs = SamplingObserver(tiny, [decl],
                                   SamplingConfig(period=5, skid=2,
                                                  seed=9),
                                   vectorized=vectorized)
            obs.observe(trace)
            obs.finish()
            results.append(obs)
        scalar, vector = results
        assert vector._span_guard(trace.addr.astype(np.int64),
                                  trace.size.astype(np.int64))
        _assert_identical(scalar, vector)

    def test_pending_skids_cross_segment_boundaries(self):
        # Records skidded past a segment's end must land identically
        # whatever replay handles the next segment.
        kernel = Gemm(20)
        results = []
        for vectorized in (False, True):
            obs = SamplingObserver(
                SMALL_CACHE, kernel.streams(),
                SamplingConfig(period=6, skid=150, skid_jitter=40,
                               seed=21),
                vectorized=vectorized)
            for segment in kernel.segments(100):
                obs.observe(segment)
            obs.finish()
            results.append(obs)
        _assert_identical(*results)

    def test_cli_scalar_replay_flag(self, capsys):
        import json

        from repro.cli import main

        outputs = {}
        for flag in ([], ["--scalar-replay"]):
            rc = main(["sample", "--kernel", "gemm", "--size", "16",
                       "--cache-kib", "16", "--period", "8", "--seed",
                       "3", "--json"] + flag)
            assert rc == 0
            outputs[bool(flag)] = json.loads(capsys.readouterr().out)
        assert outputs[False]["replay"] == "vectorized"
        assert outputs[True]["replay"] == "scalar"
        for key in ("estimated", "exact", "levels", "hot_lines"):
            assert outputs[False][key] == outputs[True][key]


class TestTriggerArrays:
    @given(seed=st.integers(0, 2**16),
           period=st.integers(1, 40),
           jitter_cap=st.integers(0, 10),
           n_windows=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_array_matches_scalar_draw_for_draw(self, seed, period,
                                                jitter_cap, n_windows):
        from repro.papi.sampling import _Channel

        jitter = min(period - 1, jitter_cap)
        scalar = _Channel(period, jitter, np.random.default_rng(seed))
        vector = _Channel(period, jitter, np.random.default_rng(seed))
        bounds_rng = np.random.default_rng(seed + 1)
        pos = 0
        for _ in range(n_windows):
            width = int(bounds_rng.integers(0, 4 * period + 1))
            got = vector.triggers_array(pos, pos + width)
            ref = scalar.triggers(pos, pos + width)
            np.testing.assert_array_equal(got, np.asarray(ref, np.int64))
            pos += width
        assert vector.next_at == scalar.next_at
        assert vector.fired == scalar.fired
        # Same RNG *state*, not just the same outputs so far: the two
        # implementations stay interchangeable mid-stream.
        assert (vector.rng.bit_generator.state
                == scalar.rng.bit_generator.state)

    def test_empty_window_still_advances_arm(self):
        from repro.papi.sampling import _Channel

        ch = _Channel(10, 0, np.random.default_rng(0))
        phase = ch.next_at
        out = ch.triggers_array(phase + 20, phase + 20)
        assert out.size == 0
        assert ch.next_at == phase + 20
        assert ch.fired == 0
