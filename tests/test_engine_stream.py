"""Stream declarations, policy resolution, and access interleaving."""

import pytest

from repro.engine.stream import (
    Access,
    StreamDecl,
    interleave,
    resolve_policies,
)
from repro.errors import ConfigurationError
from repro.machine.prefetch import SoftwarePrefetch
from repro.machine.store import StorePolicy


def decl(name="s", write=False, n=100, elem=8, stride=8, footprint=800,
         interarrival=1):
    return StreamDecl(name=name, is_write=write, n_accesses=n,
                      elem_bytes=elem, stride_bytes=stride,
                      footprint_bytes=footprint, interarrival=interarrival)


class TestStreamDecl:
    def test_sequential_property(self):
        assert decl(stride=8).sequential
        assert decl(stride=-8).sequential
        assert not decl(stride=800).sequential

    def test_strided_property(self):
        assert decl(stride=800).strided
        assert not decl(stride=8).strided
        assert not decl(stride=0).strided

    def test_volume(self):
        assert decl(n=10, elem=16).volume_bytes == 160

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            decl(elem=0)
        with pytest.raises(ConfigurationError):
            StreamDecl("x", False, -1, 8, 8, 0)


class TestResolvePolicies:
    def test_only_write_streams_get_policies(self):
        policies = resolve_policies([decl("in"), decl("out", write=True)])
        assert set(policies) == {"out"}

    def test_pure_copy_bypasses(self):
        policies = resolve_policies([
            decl("in"), decl("out", write=True),
        ])
        assert policies["out"] is StorePolicy.BYPASS

    def test_strided_load_gates_bypass(self):
        policies = resolve_policies([
            decl("tmp", stride=4096),
            decl("out", write=True),
        ])
        assert policies["out"] is StorePolicy.WRITE_ALLOCATE

    def test_strided_store_allocates(self):
        policies = resolve_policies([
            decl("in"), decl("out", write=True, stride=4096),
        ])
        assert policies["out"] is StorePolicy.WRITE_ALLOCATE

    def test_sparse_store_allocates(self):
        policies = resolve_policies([
            decl("in"), decl("y", write=True, interarrival=64),
        ])
        assert policies["y"] is StorePolicy.WRITE_ALLOCATE

    def test_dcbtst_prefetch_allocates(self):
        policies = resolve_policies(
            [decl("in"), decl("out", write=True)],
            prefetch=SoftwarePrefetch(dcbt=True, dcbtst=True),
        )
        assert policies["out"] is StorePolicy.WRITE_ALLOCATE

    def test_short_streams_do_not_trigger_detector(self):
        policies = resolve_policies([
            decl("tmp", stride=4096, n=2),
            decl("out", write=True),
        ])
        assert policies["out"] is StorePolicy.BYPASS


class TestInterleave:
    def test_round_robin_order(self):
        a = iter([Access("a", 0, 8, False), Access("a", 8, 8, False)])
        b = iter([Access("b", 100, 8, True)])
        order = [acc.stream for acc in interleave(a, b)]
        assert order == ["a", "b", "a"]

    def test_empty_iterators(self):
        assert list(interleave(iter([]), iter([]))) == []
