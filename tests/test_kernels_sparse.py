"""Sparse kernels: CSR numerics, SpMV traffic law, CG convergence."""

import numpy as np
import pytest

from repro.engine.analytic import CacheContext
from repro.engine.exact import ExactEngine
from repro.errors import ConfigurationError
from repro.kernels.sparse import (
    CSRMatrix,
    SpmvKernel,
    conjugate_gradient,
    dense_to_csr,
    laplacian_3d,
    random_csr,
)
from repro.machine.config import CacheConfig
from repro.units import MIB


class TestCSR:
    def test_matvec_matches_dense(self):
        mat = random_csr(50, 7, seed=1)
        x = np.random.default_rng(2).standard_normal(50)
        assert np.allclose(mat.matvec(x), mat.to_dense() @ x)

    def test_dense_roundtrip(self):
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((12, 9))
        dense[np.abs(dense) < 0.8] = 0.0
        mat = dense_to_csr(dense)
        assert np.allclose(mat.to_dense(), dense)

    def test_empty_rows_handled(self):
        dense = np.zeros((4, 4))
        dense[1, 2] = 5.0
        mat = dense_to_csr(dense)
        y = mat.matvec(np.ones(4))
        assert np.allclose(y, [0.0, 5.0, 0.0, 0.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CSRMatrix(2, 2, np.array([0, 1]), np.array([0]),
                      np.array([1.0]))

    def test_laplacian_structure(self):
        mat = laplacian_3d(3, 3, 3)
        dense = mat.to_dense()
        assert np.allclose(dense, dense.T)
        assert np.all(np.diag(dense) == 6.0)
        # Interior point has 6 neighbours.
        centre = (1 * 3 + 1) * 3 + 1
        assert (dense[centre] != 0).sum() == 7

    def test_laplacian_positive_definite(self):
        dense = laplacian_3d(3, 3, 2).to_dense()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.min() > 0


class TestSpmvKernel:
    def test_numerics(self):
        mat = random_csr(64, 5, seed=4)
        kernel = SpmvKernel(mat, seed=4)
        x = kernel.make_input()
        assert np.allclose(kernel.compute(), mat.to_dense() @ x)

    def test_cached_law_matches_exact(self):
        mat = random_csr(256, 8, seed=5)
        kernel = SpmvKernel(mat)
        engine = ExactEngine(CacheConfig(capacity_bytes=4 * MIB))
        exact = engine.run_nest(kernel.streams(), kernel.exact_accesses())
        analytic = kernel.traffic(CacheContext(capacity_bytes=4 * MIB))
        assert analytic.read_bytes == pytest.approx(exact.read_bytes,
                                                    rel=0.06)
        assert analytic.write_bytes == pytest.approx(exact.write_bytes,
                                                     rel=0.06)

    def test_uncached_gather_amplifies(self):
        mat = random_csr(512, 8, seed=6)
        kernel = SpmvKernel(mat)
        big = kernel.traffic(CacheContext(capacity_bytes=4 * MIB))
        tiny = kernel.traffic(CacheContext(capacity_bytes=1024))
        assert tiny.read_bytes > 2 * big.read_bytes

    def test_uncached_exact_crossval(self):
        mat = random_csr(512, 8, seed=6)
        kernel = SpmvKernel(mat)
        engine = ExactEngine(CacheConfig(capacity_bytes=2048,
                                         associativity=4))
        exact = engine.run_nest(kernel.streams(), kernel.exact_accesses())
        analytic = kernel.traffic(CacheContext(capacity_bytes=2048))
        assert analytic.read_bytes == pytest.approx(exact.read_bytes,
                                                    rel=0.25)

    def test_flops(self):
        mat = random_csr(32, 4, seed=7)
        assert SpmvKernel(mat).flops() == 2 * mat.nnz

    def test_from_shape_matches_materialised_law(self):
        shape_only = SpmvKernel.from_shape(256, 8)
        real = SpmvKernel(random_csr(256, 8, seed=5))
        ctx = CacheContext(capacity_bytes=4 * MIB)
        assert tuple(shape_only.traffic(ctx)) == tuple(real.traffic(ctx))

    def test_from_shape_scales_without_data(self):
        kernel = SpmvKernel.from_shape(1 << 22, 8)
        assert kernel.matrix.nnz == (1 << 22) * 8
        assert kernel.flops() == 2 * kernel.matrix.nnz

    def test_from_shape_validation(self):
        with pytest.raises(ConfigurationError):
            SpmvKernel.from_shape(4, 8)

    def test_expected_traffic_shape(self):
        mat = random_csr(100, 10, seed=8)
        e = SpmvKernel(mat).expected_traffic()
        # values dominate reads: 8 B per nnz plus 4 B index.
        assert e.read_bytes > mat.nnz * 12
        assert e.write_bytes == 100 * 8


class TestConjugateGradient:
    def test_solves_laplacian(self):
        mat = laplacian_3d(4, 4, 4)
        rng = np.random.default_rng(9)
        b = rng.standard_normal(mat.n_rows)
        result = conjugate_gradient(mat, b, tol=1e-10)
        assert result.converged
        assert np.allclose(mat.matvec(result.x), b, atol=1e-7)

    def test_matches_direct_solve(self):
        mat = laplacian_3d(3, 3, 3)
        b = np.ones(mat.n_rows)
        result = conjugate_gradient(mat, b, tol=1e-12)
        direct = np.linalg.solve(mat.to_dense(), b)
        assert np.allclose(result.x, direct, atol=1e-8)

    def test_residuals_monotone_ish(self):
        mat = laplacian_3d(4, 4, 2)
        b = np.ones(mat.n_rows)
        result = conjugate_gradient(mat, b)
        # CG residuals can wobble, but the trend must collapse.
        assert result.residual_norms[-1] < 1e-6 * result.residual_norms[0]

    def test_finishes_within_n_iterations_in_exact_arithmetic(self):
        mat = laplacian_3d(3, 3, 2)
        b = np.ones(mat.n_rows)
        result = conjugate_gradient(mat, b, tol=1e-10)
        assert result.iterations <= mat.n_rows + 2

    def test_rejects_non_spd(self):
        dense = np.array([[1.0, 0.0], [0.0, -2.0]])
        mat = dense_to_csr(dense)
        with pytest.raises(ConfigurationError):
            conjugate_gradient(mat, np.array([1.0, 1.0]))

    def test_shape_validation(self):
        mat = laplacian_3d(2, 2, 2)
        with pytest.raises(ConfigurationError):
            conjugate_gradient(mat, np.ones(3))
