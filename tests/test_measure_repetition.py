"""Adaptive repetitions (Eq. 5), aggregation, sweep helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.measure.repetition import (
    PAPER_POLICY,
    RepetitionPolicy,
    aggregate,
    repetitions_for,
    sweep_sizes,
)


class TestEquation5:
    def test_paper_values(self):
        # Repetitions(N) = floor(514 - 0.246 N) for N < 2048, else 10.
        assert repetitions_for(0) == 514
        assert repetitions_for(100) == 514 - 25  # floor(514-24.6)=489
        assert repetitions_for(1000) == 268
        assert repetitions_for(2047) == 10  # floor(10.4..) = 10
        assert repetitions_for(2048) == 10
        assert repetitions_for(100000) == 10

    def test_monotonically_nonincreasing(self):
        values = [repetitions_for(n) for n in range(0, 4096, 64)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_never_below_floor(self):
        assert all(repetitions_for(n) >= 10 for n in range(0, 5000, 7))

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            repetitions_for(-1)

    def test_custom_policy(self):
        policy = RepetitionPolicy(intercept=100, slope=0.1, cutoff=500,
                                  floor=5)
        assert policy.repetitions(0) == 100
        assert policy.repetitions(500) == 5

    def test_paper_policy_constants(self):
        assert PAPER_POLICY.intercept == 514.0
        assert PAPER_POLICY.slope == 0.246
        assert PAPER_POLICY.cutoff == 2048
        assert PAPER_POLICY.floor == 10


class TestAggregate:
    def test_mean(self):
        assert aggregate([1.0, 2.0, 3.0], "mean") == 2.0

    def test_min(self):
        assert aggregate([5.0, 2.0, 9.0], "min") == 2.0

    def test_median(self):
        assert aggregate([1.0, 100.0, 3.0], "median") == 3.0

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            aggregate([1.0], "mode")

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            aggregate([], "mean")

    def test_min_robust_to_noise_spike(self):
        # The rationale from [9]: min discards additive noise spikes.
        clean = 100.0
        noisy = [clean, clean * 5, clean * 1.1, clean * 2]
        assert aggregate(noisy, "min") == clean
        assert aggregate(noisy, "mean") > clean


class TestSweepSizes:
    def test_monotone_and_bounded(self):
        sizes = sweep_sizes(64, 4096)
        assert sizes == sorted(set(sizes))
        assert sizes[0] >= 16
        assert sizes[-1] <= 4096 + 16

    def test_multiples_of_16(self):
        assert all(n % 16 == 0 for n in sweep_sizes(64, 2048))

    def test_bad_range(self):
        with pytest.raises(ConfigurationError):
            sweep_sizes(100, 50)
