"""Derived metrics: bandwidth, intensity, roofline placement."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.blas import Dot, Gemm
from repro.machine.config import SUMMIT
from repro.measure.derived import DerivedMetrics, from_measurement
from repro.measure.session import MeasurementSession
from repro.noise import QUIET


class TestArithmetic:
    def test_bandwidth_and_flop_rate(self):
        m = DerivedMetrics(bytes_moved=2_000_000, flops=1e6, seconds=0.01)
        assert m.bandwidth == pytest.approx(2e8)
        assert m.flop_rate == pytest.approx(1e8)

    def test_intensity(self):
        m = DerivedMetrics(bytes_moved=100, flops=250, seconds=1.0)
        assert m.arithmetic_intensity == 2.5

    def test_zero_seconds(self):
        m = DerivedMetrics(bytes_moved=10, flops=10, seconds=0.0)
        assert m.bandwidth == 0.0

    def test_zero_bytes_infinite_intensity(self):
        assert DerivedMetrics(0, 1.0, 1.0).arithmetic_intensity == \
            float("inf")
        assert DerivedMetrics(0, 0.0, 1.0).arithmetic_intensity == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            DerivedMetrics(-1, 0, 0)


class TestRoofline:
    def test_ridge_point(self):
        ridge = DerivedMetrics.ridge_intensity(SUMMIT, n_cores=1)
        assert ridge == pytest.approx(
            SUMMIT.socket.core_flops / SUMMIT.socket.memory_bandwidth)

    def test_streaming_kernel_is_memory_bound(self):
        # DOT: 2 flops per 16 bytes -> far below any ridge.
        m = DerivedMetrics(bytes_moved=16_000, flops=2_000, seconds=1e-6)
        assert m.roofline_bound(SUMMIT, n_cores=21) == "memory"

    def test_dense_kernel_is_compute_bound(self):
        # Cached GEMM: 2N^3 flops per 4N^2 * 8 bytes.
        n = 2048
        m = DerivedMetrics(bytes_moved=4 * n * n * 8, flops=2 * n ** 3,
                           seconds=1.0)
        assert m.roofline_bound(SUMMIT, n_cores=1) == "compute"

    def test_attainable_capped_by_peak(self):
        m = DerivedMetrics(bytes_moved=1, flops=1e15, seconds=1.0)
        assert m.attainable_flop_rate(SUMMIT, n_cores=2) == \
            2 * SUMMIT.socket.core_flops

    def test_efficiency_bounded(self):
        session = MeasurementSession("summit", seed=1, noise=QUIET)
        kernel = Gemm(256)
        result = session.measure_kernel(kernel, noisy=False)
        m = from_measurement(result, kernel)
        assert 0.0 < m.efficiency(SUMMIT) <= 1.0


class TestFromMeasurement:
    def test_intensities_match_theory(self):
        session = MeasurementSession("summit", seed=1, noise=QUIET)
        dot = Dot(1 << 20)
        result = session.measure_kernel(dot, noisy=False)
        m = from_measurement(result, dot)
        # DOT: 2N flops over 2N*8 bytes = 0.125 flops/byte.
        assert m.arithmetic_intensity == pytest.approx(0.125, rel=0.01)

    def test_batched_flops_scaled(self):
        session = MeasurementSession("summit", seed=1, noise=QUIET)
        kernel = Gemm(128)
        result = session.measure_kernel(kernel, n_cores=21, noisy=False)
        m = from_measurement(result, kernel)
        assert m.flops == 21 * kernel.flops()
