"""PMNS namespace tree."""

import pytest

from repro.errors import PMNSError
from repro.pcp.pmns import PMNS


@pytest.fixture
def pmns():
    tree = PMNS()
    tree.register("perfevent.hwcounters.a.value", 1)
    tree.register("perfevent.hwcounters.b.value", 2)
    tree.register("kernel.all.load", 3)
    return tree


class TestLookup:
    def test_lookup(self, pmns):
        assert pmns.lookup("perfevent.hwcounters.a.value") == 1
        assert pmns.lookup("kernel.all.load") == 3

    def test_unknown_name(self, pmns):
        with pytest.raises(PMNSError):
            pmns.lookup("perfevent.hwcounters.c.value")

    def test_non_leaf_lookup_fails(self, pmns):
        with pytest.raises(PMNSError):
            pmns.lookup("perfevent.hwcounters")

    def test_name_of(self, pmns):
        assert pmns.name_of(2) == "perfevent.hwcounters.b.value"
        with pytest.raises(PMNSError):
            pmns.name_of(99)

    def test_contains(self, pmns):
        assert "kernel.all.load" in pmns
        assert "kernel.all" not in pmns

    def test_len(self, pmns):
        assert len(pmns) == 3


class TestChildren:
    def test_root_children(self, pmns):
        assert pmns.children() == [("kernel", False), ("perfevent", False)]

    def test_leaf_flags(self, pmns):
        assert pmns.children("perfevent.hwcounters.a") == [("value", True)]

    def test_unknown_prefix(self, pmns):
        with pytest.raises(PMNSError):
            pmns.children("nosuch")


class TestTraverse:
    def test_traverse_all(self, pmns):
        assert list(pmns.traverse()) == [
            "kernel.all.load",
            "perfevent.hwcounters.a.value",
            "perfevent.hwcounters.b.value",
        ]

    def test_traverse_subtree(self, pmns):
        assert list(pmns.traverse("perfevent")) == [
            "perfevent.hwcounters.a.value",
            "perfevent.hwcounters.b.value",
        ]


class TestRegistration:
    def test_reregister_same_pmid_ok(self, pmns):
        pmns.register("perfevent.hwcounters.a.value", 1)

    def test_conflicting_pmid_rejected(self, pmns):
        with pytest.raises(PMNSError):
            pmns.register("perfevent.hwcounters.a.value", 9)

    def test_pmid_reuse_rejected(self, pmns):
        with pytest.raises(PMNSError):
            pmns.register("other.metric", 1)

    def test_leaf_cannot_become_interior(self, pmns):
        with pytest.raises(PMNSError):
            pmns.register("kernel.all.load.sub", 10)

    def test_interior_cannot_become_leaf(self, pmns):
        with pytest.raises(PMNSError):
            pmns.register("kernel.all", 11)

    def test_malformed_names(self, pmns):
        with pytest.raises(PMNSError):
            pmns.register("", 12)
        with pytest.raises(PMNSError):
            pmns.register("a..b", 13)
