"""pmlogger archive sampling and rate conversion."""

import pytest

from repro.errors import PCPError
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.noise import QUIET
from repro.pcp.client import PmapiContext
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pcp.pmlogger import PmLogger
from repro.pmu.events import pcp_metric_name

METRIC = pcp_metric_name(0, write=False)


@pytest.fixture
def node():
    return Node(SUMMIT, seed=6, noise=QUIET)


@pytest.fixture
def logger(node):
    pmcd = start_pmcd_for_node(node, round_trip_seconds=0.0)
    context = PmapiContext(pmcd, node=node)
    return PmLogger(context, [METRIC], interval_seconds=0.5)


class TestSampling:
    def test_samples_are_timestamped(self, logger, node):
        logger.run(3)
        assert len(logger.archive) == 3
        times = [rec.timestamp for rec in logger.archive]
        assert times == sorted(times)
        assert times[-1] - times[0] == pytest.approx(1.0)

    def test_values_follow_counters(self, logger, node):
        logger.sample()
        node.socket(0).record_traffic(read_bytes=8 * 64 * 10)
        node.advance(0.5, background=False)
        logger.sample()
        series = logger.series(METRIC, "cpu87")
        assert series[1][1] - series[0][1] == 640

    def test_rate_conversion(self, logger, node):
        logger.sample()
        node.socket(0).record_traffic(read_bytes=8 * 64 * 100)
        node.advance(2.0, background=False)
        logger.sample()
        rates = logger.rates(METRIC, "cpu87")
        # Channel 0 carries 1/8th of the socket traffic.
        assert rates[0][1] == pytest.approx(8 * 64 * 100 / 8 / 2.0)

    def test_instances_enumerated(self, logger):
        logger.sample()
        assert logger.instances_of(METRIC) == ["cpu87", "cpu175"] or \
            logger.instances_of(METRIC) == ["cpu175", "cpu87"] or \
            sorted(logger.instances_of(METRIC)) == ["cpu175", "cpu87"]

    def test_unknown_series(self, logger):
        logger.sample()
        with pytest.raises(PCPError):
            logger.series(METRIC, "cpu999")

    def test_validation(self, node):
        pmcd = start_pmcd_for_node(node)
        context = PmapiContext(pmcd, node=node)
        with pytest.raises(PCPError):
            PmLogger(context, [], interval_seconds=1.0)
        with pytest.raises(PCPError):
            PmLogger(context, [METRIC], interval_seconds=0.0)
        with pytest.raises(PCPError):
            PmLogger(context, ["no.such.metric"])

    def test_background_bandwidth_curve(self):
        """End-to-end: log a noisy node and recover its background
        bandwidth via rate conversion (the pmlogger use case)."""
        node = Node(SUMMIT, seed=6)  # default noise
        pmcd = start_pmcd_for_node(node, round_trip_seconds=0.0)
        logger = PmLogger(PmapiContext(pmcd, node=node),
                          [pcp_metric_name(ch, False) for ch in range(8)],
                          interval_seconds=1.0)
        logger.run(6)
        total_rate = 0.0
        for ch in range(8):
            rates = logger.rates(pcp_metric_name(ch, False), "cpu87")
            total_rate += sum(r for _, r in rates) / len(rates)
        # Should land near the configured background read rate.
        assert total_rate == pytest.approx(30e6, rel=0.6)
