"""Store-bypass decision table — the core of Figs 6-9's analysis."""

from repro.machine.prefetch import SoftwarePrefetch, StreamDetector
from repro.machine.store import (
    DENSE_INTERARRIVAL_MAX,
    StoreContext,
    StorePolicy,
    resolve_store_policy,
    store_policy_for,
)


def ctx(sequential=True, strided=False, interarrival=1, dcbtst=False):
    return StoreContext(
        sequential=sequential,
        strided_stream_active=strided,
        interarrival=interarrival,
        prefetch=SoftwarePrefetch(dcbt=dcbtst, dcbtst=dcbtst),
    )


class TestDecisionTable:
    def test_dense_sequential_copy_bypasses(self):
        # S1CF loop nest 1 / S2CF: one read observed, no RFO.
        assert resolve_store_policy(ctx()) is StorePolicy.BYPASS

    def test_dcbtst_forces_write_allocate(self):
        # Fig 6b / 9b: -fprefetch-loop-arrays re-enables the read.
        assert resolve_store_policy(ctx(dcbtst=True)) is \
            StorePolicy.WRITE_ALLOCATE

    def test_strided_stream_on_core_forces_write_allocate(self):
        # GEMM's B stream / S1CF loop nest 2's tmp stream.
        assert resolve_store_policy(ctx(strided=True)) is \
            StorePolicy.WRITE_ALLOCATE

    def test_strided_store_stream_forces_write_allocate(self):
        # S1CF combined nest: out itself is strided.
        assert resolve_store_policy(ctx(sequential=False)) is \
            StorePolicy.WRITE_ALLOCATE

    def test_sparse_store_stream_forces_write_allocate(self):
        # GEMV's y / GEMM's C: one store per dot product — "M reads are
        # incurred by the hardware when writing into the vector y".
        assert resolve_store_policy(ctx(interarrival=100)) is \
            StorePolicy.WRITE_ALLOCATE

    def test_density_threshold_boundary(self):
        assert resolve_store_policy(
            ctx(interarrival=DENSE_INTERARRIVAL_MAX)) is StorePolicy.BYPASS
        assert resolve_store_policy(
            ctx(interarrival=DENSE_INTERARRIVAL_MAX + 1)) is \
            StorePolicy.WRITE_ALLOCATE


class TestDetectorIntegration:
    def test_policy_from_live_detector(self):
        d = StreamDetector()
        assert store_policy_for(d, sequential=True) is StorePolicy.BYPASS
        d.observe_regular("tmp", stride_bytes=8192, n_accesses=1000)
        assert store_policy_for(d, sequential=True) is \
            StorePolicy.WRITE_ALLOCATE

    def test_unit_stride_loads_do_not_gate(self):
        d = StreamDetector()
        d.observe_regular("in", stride_bytes=8, n_accesses=1000)
        assert store_policy_for(d, sequential=True, elem_size=8) is \
            StorePolicy.BYPASS
