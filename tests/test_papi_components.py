"""Individual PAPI components: enumeration, parsing, privilege, reads."""

import pytest

from repro.errors import (
    PapiNoComponent,
    PapiNoEvent,
    PapiPermissionDenied,
)
from repro.machine.config import TELLICO
from repro.machine.node import Node
from repro.papi import library_init
from repro.papi.consts import PAPI_VER_CURRENT, strerror


class TestRegistry:
    def test_summit_components(self, summit_papi):
        assert summit_papi.component_names() == [
            "infiniband", "nvml", "pcp", "perf_event",
            "perf_event_uncore", "rapl"]

    def test_tellico_components_no_devices(self):
        papi = library_init(Node(TELLICO, seed=1))
        assert papi.component_names() == ["perf_event",
                                          "perf_event_uncore", "rapl"]

    def test_unknown_component(self, summit_papi):
        with pytest.raises(PapiNoComponent):
            summit_papi.component("cuda")

    def test_unknown_event_resolution(self, summit_papi):
        with pytest.raises(PapiNoEvent):
            summit_papi.components.resolve_event("bogus:::event")

    def test_component_report(self, summit_papi):
        report = summit_papi.component_report()
        assert report["pcp"]["available"] == "yes"
        assert report["perf_event_uncore"]["available"] == "no"
        assert "privileges" in report["perf_event_uncore"]["reason"]

    def test_version_handshake(self, summit_node):
        with pytest.raises(PapiNoEvent):
            library_init(summit_node, version=0x06000000)
        papi = library_init(summit_node, version=PAPI_VER_CURRENT)
        assert papi.version == PAPI_VER_CURRENT

    def test_strerror(self):
        assert strerror(0) == "PAPI_OK"
        assert strerror(-7) == "PAPI_ENOEVNT"
        assert "error" in strerror(-12345)


class TestPCPComponent:
    def test_list_events_covers_both_sockets(self, summit_papi):
        events = summit_papi.component("pcp").list_events()
        assert len(events) == 32
        assert sum(1 for e in events if e.endswith(":cpu87")) == 16

    def test_bad_event_shape(self, summit_papi):
        with pytest.raises(PapiNoEvent):
            summit_papi.component("pcp").open_event("pcp:::justametric")

    def test_unknown_metric(self, summit_papi):
        with pytest.raises(PapiNoEvent):
            summit_papi.component("pcp").open_event(
                "pcp:::perfevent.hwcounters.nope.value:cpu87")

    def test_unknown_instance(self, summit_papi):
        with pytest.raises(PapiNoEvent):
            summit_papi.component("pcp").open_event(
                "pcp:::perfevent.hwcounters.nest_mba0_imc."
                "PM_MBA0_READ_BYTES.value:cpu3")

    def test_query_event(self, summit_papi):
        good = ("pcp:::perfevent.hwcounters.nest_mba0_imc."
                "PM_MBA0_READ_BYTES.value:cpu87")
        assert summit_papi.query_event(good)
        assert not summit_papi.query_event("pcp:::nope.metric:cpu87")


class TestPerfUncoreComponent:
    def test_denied_on_summit(self, summit_papi):
        with pytest.raises(PapiPermissionDenied):
            summit_papi.component("perf_event_uncore").open_event(
                "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0")

    def test_allowed_on_tellico(self, tellico_papi, tellico_node):
        handle = tellico_papi.component("perf_event_uncore").open_event(
            "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0")
        tellico_node.socket(0).record_traffic(read_bytes=8 * 64)
        assert handle.read() == 64

    def test_owns_bare_pmu_names(self, tellico_papi):
        cmp = tellico_papi.components.resolve_event(
            "power9_nest_mba3::PM_MBA3_WRITE_BYTES:cpu=0")
        assert cmp.name == "perf_event_uncore"

    def test_malformed_event(self, tellico_papi):
        with pytest.raises(PapiNoEvent):
            tellico_papi.component("perf_event_uncore").open_event(
                "power9_nest_mba0::WRONG:cpu=0")

    def test_list_events_both_sockets(self, tellico_papi):
        events = tellico_papi.component("perf_event_uncore").list_events()
        assert len(events) == 32


class TestNVMLComponent:
    def test_event_naming(self, summit_papi):
        events = summit_papi.component("nvml").list_events()
        assert len(events) == 6
        assert events[0] == \
            "nvml:::Tesla_V100-SXM2-16GB:device_0:power"

    def test_power_follows_device(self, summit_papi, summit_node):
        gpu = summit_node.gpus[0]
        handle = summit_papi.component("nvml").open_event(
            "nvml:::Tesla_V100-SXM2-16GB:device_0:power")
        assert handle.read() == int(gpu.config.idle_power_w * 1000)
        gpu.execute(1e9, advance_clock=False)  # busy interval logged
        # Sample inside the busy interval.
        assert handle.read() == int(gpu.config.peak_power_w * 1000)
        assert handle.instantaneous

    def test_unknown_device(self, summit_papi):
        with pytest.raises(PapiNoEvent):
            summit_papi.component("nvml").open_event(
                "nvml:::Tesla_V100-SXM2-16GB:device_9:power")

    def test_malformed(self, summit_papi):
        with pytest.raises(PapiNoEvent):
            summit_papi.component("nvml").open_event("nvml:::power")


class TestInfinibandComponent:
    def test_event_naming(self, summit_papi):
        events = summit_papi.component("infiniband").list_events()
        assert "infiniband:::mlx5_0_1_ext:port_recv_data" in events
        assert "infiniband:::mlx5_1_1_ext:port_xmit_data" in events

    def test_counter_units_are_4_bytes(self, summit_papi, summit_node):
        nic = summit_node.nics[0]
        handle = summit_papi.component("infiniband").open_event(
            "infiniband:::mlx5_0_1_ext:port_recv_data")
        nic.record_recv(4096)
        assert handle.read() == 1024  # 4096 octets / 4

    def test_unknown_port(self, summit_papi):
        with pytest.raises(PapiNoEvent):
            summit_papi.component("infiniband").open_event(
                "infiniband:::mlx9_0_1_ext:port_recv_data")

    def test_malformed_counter(self, summit_papi):
        with pytest.raises(PapiNoEvent):
            summit_papi.component("infiniband").open_event(
                "infiniband:::mlx5_0_1_ext:port_magic_data")


class TestListEvents:
    def test_global_listing_skips_unavailable(self, summit_papi):
        events = summit_papi.list_events()
        # perf_event_uncore is unavailable on Summit: none of its
        # events appear in the global list.
        assert not any(e.startswith("power9_nest") for e in events)
        assert any(e.startswith("pcp:::") for e in events)
        assert any(e.startswith("nvml:::") for e in events)

    def test_component_scoped_listing(self, summit_papi):
        assert len(summit_papi.list_events("nvml")) == 6
