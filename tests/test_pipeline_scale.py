"""Nightly scale validation: a billion-access multi-kernel pipelined run.

Three kernel families (~1.02B total accesses — GEMM N=512, STREAM
triad over 1e8 doubles, and a capped GEMV) flow through
``PipelinedExactEngine.run_many`` in one helper subprocess, twice:
first with a fault injected through ``after_shard_hook`` after two
kernels have checkpointed, then a fresh engine pointed at the same
checkpoint directory that must resume the finished kernels and
complete the rest. The parent asserts the resumed totals match the
analytic laws (triad exactly, GEMM within the usual 2%), and that
peak RSS stayed bounded — the whole point of segment streaming: the
~21 GB of trace columns never exist at once.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_HELPER = r"""
import json, resource, sys

from repro.engine.analytic import CacheContext
from repro.engine.pipeline import PipelinedExactEngine
from repro.kernels.blas import CappedGemv, Gemm
from repro.kernels.stream import StreamKernel
from repro.machine.config import CacheConfig
from repro.units import MIB

ckpt = sys.argv[1]
cache = CacheConfig(capacity_bytes=4 * MIB)
kernels = [
    Gemm(512),
    StreamKernel(op="triad", n=100_000_000),
    CappedGemv(m=56_000, n=4_000, p=64),
]
total_rows = sum(sum(d.n_accesses for d in k.streams())
                 for k in kernels)

calls = []

def hook(worker_id):
    calls.append(worker_id)
    if len(calls) == 3:
        # Nests 1 and 2 are checkpointed by now (saves precede hooks);
        # the run dies mid-flight like a preempted nightly worker.
        raise RuntimeError("injected fault")

eng = PipelinedExactEngine(cache, n_workers=2, checkpoint_dir=ckpt)
eng.after_shard_hook = hook
faulted = False
try:
    eng.run_many(kernels)
except RuntimeError:
    faulted = True

# The resume leg runs with the self-tuning layer on: the nightly also
# proves the controller at the billion-access scale and exports its
# tuning trace as a CI artifact.
resumed_eng = PipelinedExactEngine(cache, n_workers=2,
                                   checkpoint_dir=ckpt, autotune=True)
with resumed_eng:
    results = resumed_eng.run_many(kernels)
stats = resumed_eng.last_pipeline_stats

with open(sys.argv[2], "w") as fh:
    json.dump({
        "autotune": stats["autotune"],
        "target_occupancy": stats.get("target_occupancy"),
        "final_segment_rows": stats.get("final_segment_rows"),
        "mean_ring_occupancy": stats.get("mean_ring_occupancy"),
        "worker_cpus": stats.get("worker_cpus"),
        "trace": stats.get("tuning_trace", []),
    }, fh)

ctx = CacheContext(capacity_bytes=4 * MIB)
usage = resource.getrusage(resource.RUSAGE_SELF)
children = resource.getrusage(resource.RUSAGE_CHILDREN)
print(json.dumps({
    "total_rows": total_rows,
    "faulted": faulted,
    "kernels_resumed": resumed_eng.kernels_resumed,
    "results": [[t.read_bytes, t.write_bytes] for t in results],
    "analytic": [[a.read_bytes, a.write_bytes]
                 for a in (k.traffic(ctx) for k in kernels)],
    "triad_n": kernels[1].n,
    "pipeline": {"segments": stats["segments"],
                 "utilization": stats["utilization"],
                 "mean_queue_depth": stats["mean_queue_depth"],
                 "autotune": stats["autotune"],
                 "final_segment_rows": stats.get("final_segment_rows"),
                 "tuning_decisions": len(stats.get("tuning_trace", []))},
    "peak_rss_kb": max(usage.ru_maxrss, children.ru_maxrss),
}))
"""


@pytest.mark.slow
def test_billion_access_pipelined_run_resumes_bounded_rss(tmp_path):
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    trace_out = tmp_path / "tuning-trace.json"
    proc = subprocess.run(
        [sys.executable, "-c", _HELPER, str(tmp_path / "ckpt"),
         str(trace_out)],
        env=env, capture_output=True, text=True, timeout=3600,
    )
    assert proc.returncode == 0, proc.stderr[-4000:]
    report = json.loads(proc.stdout.splitlines()[-1])

    # The scenario the test exists for: a genuinely large multi-kernel
    # run, a mid-flight fault, and a checkpoint-driven resume.
    assert report["total_rows"] >= 1_000_000_000
    assert report["faulted"]
    assert report["kernels_resumed"] >= 1

    # Resumed totals must be the real totals. Triad is exactly
    # predictable (cold sequential reads, WCB-coalesced stores);
    # GEMM cross-validates the analytic law as at N=256.
    n = report["triad_n"]
    assert report["results"][1] == [16 * n, 8 * n]
    gemm_got, gemm_law = report["results"][0], report["analytic"][0]
    assert gemm_law[0] == pytest.approx(gemm_got[0], rel=0.02)
    assert gemm_law[1] == pytest.approx(gemm_got[1], rel=0.02)

    # Bounded memory: the full column set would be ~21 GB; the
    # streaming run must never come near it.
    rss_mb = report["peak_rss_kb"] / 1e3
    trace_mb = report["total_rows"] * 21 / 1e6
    assert rss_mb < trace_mb / 10
    assert rss_mb < 2000, f"peak RSS {rss_mb:.0f} MB not bounded"

    # The resume leg ran autotuned (byte-identical totals asserted
    # above) and exported its tuning trace for the CI artifact.
    assert report["pipeline"]["autotune"] is True
    assert report["pipeline"]["tuning_decisions"] > 0
    artifact = json.loads(trace_out.read_text())
    assert artifact["final_segment_rows"] >= 1
    assert len(artifact["trace"]) == report["pipeline"]["tuning_decisions"]
