"""Radial densities: samplers draw from the right distribution."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.qmc.observables import (
    density_distance,
    ho_radial_density,
    hydrogen_radial_density,
    radial_histogram,
)
from repro.qmc.vmc import VMC
from repro.qmc.wavefunction import HarmonicOscillator, HydrogenAtom


class TestHistogram:
    def test_normalised(self):
        rng = np.random.default_rng(0)
        walkers = rng.standard_normal((5000, 3))
        hist = radial_histogram(walkers, n_bins=40)
        assert hist.total_probability() == pytest.approx(1.0, rel=1e-9)
        assert hist.n_samples == 5000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            radial_histogram(np.zeros(10))
        with pytest.raises(ConfigurationError):
            radial_histogram(np.zeros((10, 3)), n_bins=1)


class TestAnalyticDensities:
    def test_ho_density_normalised(self):
        r = np.linspace(0, 8, 20000)
        p = ho_radial_density(r, alpha=1.2)
        assert np.trapezoid(p, r) == pytest.approx(1.0, rel=1e-4)

    def test_hydrogen_density_normalised(self):
        r = np.linspace(0, 40, 40000)
        p = hydrogen_radial_density(r, beta=0.9)
        assert np.trapezoid(p, r) == pytest.approx(1.0, rel=1e-4)

    def test_ho_mode_location(self):
        # p(r) peaks at r = 1/sqrt(alpha).
        r = np.linspace(0.01, 5, 5000)
        p = ho_radial_density(r, alpha=2.0)
        assert r[np.argmax(p)] == pytest.approx(1 / np.sqrt(2.0),
                                                abs=0.01)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ho_radial_density(np.ones(3), alpha=0.0)
        with pytest.raises(ConfigurationError):
            hydrogen_radial_density(np.ones(3), beta=-1.0)


class TestSamplersMatchAnalyticDensity:
    def test_vmc_ho_samples_psi_squared(self):
        psi = HarmonicOscillator(alpha=1.4)
        sampler = VMC(psi, n_walkers=4096, seed=3)
        sampler.run(n_blocks=6, steps_per_block=10)
        hist = radial_histogram(sampler.walkers, n_bins=30, r_max=4.0)
        analytic = ho_radial_density(hist.centers, psi.alpha)
        assert density_distance(hist, analytic) < 0.08

    def test_vmc_hydrogen_samples_psi_squared(self):
        psi = HydrogenAtom(beta=1.0)
        sampler = VMC(psi, n_walkers=4096, drift=True, seed=4,
                      timestep=0.15)
        sampler.run(n_blocks=8, steps_per_block=10)
        hist = radial_histogram(sampler.walkers, n_bins=30, r_max=6.0)
        analytic = hydrogen_radial_density(hist.centers, psi.beta)
        assert density_distance(hist, analytic) < 0.10

    def test_wrong_density_is_distinguishable(self):
        # The metric actually discriminates: alpha=1.4 walkers vs the
        # alpha=0.5 analytic curve must measure clearly farther.
        psi = HarmonicOscillator(alpha=1.4)
        sampler = VMC(psi, n_walkers=4096, seed=3)
        sampler.run(n_blocks=6, steps_per_block=10)
        hist = radial_histogram(sampler.walkers, n_bins=30, r_max=4.0)
        right = density_distance(hist,
                                 ho_radial_density(hist.centers, 1.4))
        wrong = density_distance(hist,
                                 ho_radial_density(hist.centers, 0.5))
        assert wrong > 4 * right

    def test_distance_validation(self):
        hist = radial_histogram(np.random.default_rng(0)
                                .standard_normal((100, 3)), n_bins=10)
        with pytest.raises(ConfigurationError):
            density_distance(hist, [1.0, 2.0])
