"""Report formatting helpers."""

from repro.measure.report import format_table, format_traffic_row, sparkline


class TestFormatTable:
    def test_header_and_rule(self):
        out = format_table(["a", "bb"], [[1, 2]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert set(lines[2].replace("  ", " ").strip()) == {"-", " "}

    def test_column_alignment(self):
        out = format_table(["col"], [["x"], ["longer-cell"]])
        lines = out.splitlines()
        assert len(lines[1]) == len("longer-cell")

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456], [1.2e9], [0.0]])
        assert "1.235" in out
        assert "1.200e+09" in out

    def test_no_title(self):
        out = format_table(["a"], [[1]])
        assert out.splitlines()[0] == "a"


class TestTrafficRow:
    def test_with_expectations(self):
        row = format_traffic_row("gemm", 2048, 1024, 1024, 1024)
        assert row[0] == "gemm"
        assert "2.00 KiB" in row[1]
        assert "2.00x" in row[4]
        assert "1.00x" in row[6]

    def test_without_expectations(self):
        row = format_traffic_row("x", 64, 64)
        assert len(row) == 3


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        s = sparkline([5.0] * 10)
        assert len(s) == 10
        assert len(set(s)) == 1

    def test_peaks_visible(self):
        s = sparkline([0.0, 0.0, 100.0, 0.0])
        assert s[2] != s[0]

    def test_resampled_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40
