"""Memory controller: channel interleave and 64 B transaction rounding."""

import pytest

from repro.errors import SimulationError
from repro.machine.memory import MemoryController


class TestRecording:
    def test_totals(self):
        mc = MemoryController()
        mc.record_read(1024)
        mc.record_write(2048)
        assert mc.total_read_bytes == 1024
        assert mc.total_write_bytes == 2048

    def test_rounds_to_granule(self):
        mc = MemoryController()
        mc.record_read(1)
        assert mc.total_read_bytes == 64

    def test_zero_is_noop(self):
        mc = MemoryController()
        mc.record(0, 0)
        assert mc.total_read_bytes == 0

    def test_negative_rejected(self):
        mc = MemoryController()
        with pytest.raises(SimulationError):
            mc.record_read(-1)

    def test_needs_channels(self):
        with pytest.raises(SimulationError):
            MemoryController(n_channels=0)


class TestInterleave:
    def test_bulk_traffic_spreads_evenly(self):
        mc = MemoryController(n_channels=8)
        mc.record_read(8 * 64 * 1000)
        per_channel = [ch.read_bytes for ch in mc.channels]
        assert len(set(per_channel)) == 1  # exactly even

    def test_remainder_distributed_round_robin(self):
        mc = MemoryController(n_channels=8)
        for _ in range(8):
            mc.record_read(64)  # one transaction each
        per_channel = [ch.read_bytes for ch in mc.channels]
        assert per_channel == [64] * 8  # cursor rotated across calls

    def test_reads_and_writes_independent_cursors(self):
        mc = MemoryController(n_channels=4)
        mc.record_read(64)
        mc.record_write(64)
        assert mc.channels[0].read_bytes == 64
        assert mc.channels[0].write_bytes == 64

    def test_sum_preserved(self):
        mc = MemoryController(n_channels=8)
        total = 0
        for nbytes in (64, 128, 192, 1000, 7):
            mc.record_read(nbytes)
            total += ((nbytes + 63) // 64) * 64
        assert mc.total_read_bytes == total


class TestSnapshot:
    def test_snapshot_is_a_copy(self):
        mc = MemoryController()
        snap = mc.snapshot()
        mc.record_read(640)
        assert sum(ch.read_bytes for ch in snap) == 0
        assert mc.total_read_bytes == 640

    def test_counters_monotonic(self):
        mc = MemoryController()
        mc.record_read(64)
        first = mc.total_read_bytes
        mc.record_read(64)
        assert mc.total_read_bytes > first
