"""STREAM kernels: numerics, traffic, exact cross-validation."""

import numpy as np
import pytest

from repro.engine.analytic import CacheContext
from repro.engine.exact import ExactEngine
from repro.errors import ConfigurationError
from repro.kernels.stream import StreamKernel, stream_suite
from repro.machine.config import CacheConfig
from repro.machine.prefetch import SoftwarePrefetch
from repro.units import DOUBLE, MIB

CTX = CacheContext(capacity_bytes=5 * MIB)


class TestNumerics:
    def test_copy(self):
        k = StreamKernel("copy", 100, seed=1)
        assert np.array_equal(k.compute(), k.make_inputs()[0])

    def test_scale(self):
        k = StreamKernel("scale", 100, q=2.5, seed=1)
        assert np.allclose(k.compute(), 2.5 * k.make_inputs()[0])

    def test_add(self):
        k = StreamKernel("add", 100, seed=1)
        a, b = k.make_inputs()
        assert np.allclose(k.compute(), a + b)

    def test_triad(self):
        k = StreamKernel("triad", 100, q=3.0, seed=1)
        a, b = k.make_inputs()
        assert np.allclose(k.compute(), a + 3.0 * b)

    def test_unknown_op(self):
        with pytest.raises(ConfigurationError):
            StreamKernel("daxpy", 100)


class TestTraffic:
    @pytest.mark.parametrize("op,reads", [("copy", 1), ("scale", 1),
                                          ("add", 2), ("triad", 2)])
    def test_expected_element_counts(self, op, reads):
        n = 4096
        k = StreamKernel(op, n)
        e = k.expected_traffic()
        assert e.read_bytes == reads * n * DOUBLE
        assert e.write_bytes == n * DOUBLE

    def test_law_matches_expectation(self):
        # Dense sequential stores bypass: no read-for-write.
        for k in stream_suite(4096):
            t = k.traffic(CTX)
            e = k.expected_traffic()
            assert tuple(t) == tuple(e), k.op

    def test_dcbtst_adds_read_per_write(self):
        k = StreamKernel("copy", 4096)
        pf = SoftwarePrefetch(dcbt=True, dcbtst=True)
        t = k.traffic(CTX, pf)
        assert t.read_bytes == 2 * 4096 * DOUBLE

    @pytest.mark.parametrize("op", ["copy", "add", "triad", "scale"])
    def test_exact_crossval(self, op):
        k = StreamKernel(op, 2048)
        engine = ExactEngine(CacheConfig(capacity_bytes=MIB))
        exact = engine.run_nest(k.streams(), k.exact_accesses())
        analytic = k.traffic(CacheContext(capacity_bytes=MIB))
        assert tuple(exact) == tuple(analytic)

    def test_flops(self):
        assert StreamKernel("copy", 100).flops() == 0
        assert StreamKernel("triad", 100).flops() == 200

    def test_suite_covers_all_ops(self):
        assert sorted(k.op for k in stream_suite(64)) == \
            ["add", "copy", "scale", "triad"]
