"""Failure injection: the stack degrades loudly, not silently."""

import pytest

from repro.errors import GPUError, PapiNoEvent, PCPError
from repro.fft3d.app import FFT3DApp
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.mpi.grid import ProcessorGrid
from repro.noise import QUIET
from repro.papi import library_init
from repro.pcp import PmapiContext, start_pmcd_for_node
from repro.pcp.server import PMCDServer, RemotePMCD
from repro.pmu.events import pcp_metric_name

METRIC = pcp_metric_name(0, write=False)


class TestPMCDFailures:
    def test_daemon_stopped_mid_measurement(self):
        node = Node(SUMMIT, seed=1, noise=QUIET)
        pmcd = start_pmcd_for_node(node)
        papi = library_init(node, pmcd=pmcd)
        es = papi.create_eventset()
        es.add_event(f"pcp:::{METRIC}:cpu87")
        es.start()
        pmcd.running = False  # daemon dies during the window
        with pytest.raises(PCPError):
            es.stop()

    def test_daemon_restart_recovers(self):
        node = Node(SUMMIT, seed=1, noise=QUIET)
        pmcd = start_pmcd_for_node(node)
        client = PmapiContext(pmcd, node=node)
        pmcd.running = False
        with pytest.raises(PCPError):
            client.lookup_names([METRIC])
        pmcd.running = True
        assert client.lookup_names([METRIC])

    def test_remote_connection_lost(self):
        node = Node(SUMMIT, seed=1, noise=QUIET)
        server = PMCDServer(start_pmcd_for_node(node)).start()
        remote = RemotePMCD(*server.address, round_trip_seconds=0.0)
        client = PmapiContext(remote, node=node)
        pmids = client.lookup_names([METRIC])
        assert pmids
        # Drop the transport underneath the client (network partition).
        remote._sock.shutdown(2)
        with pytest.raises(Exception):
            client.fetch(pmids)
        remote.close()
        server.stop()


class TestDeviceFailures:
    def test_gpu_oom_fails_cleanly(self):
        node = Node(SUMMIT, seed=1, noise=QUIET)
        gpu = node.gpus[0]
        gpu.malloc(gpu.config.memory_bytes)
        with pytest.raises(GPUError):
            gpu.malloc(1)
        # State is unchanged: freeing the original block still works.
        gpu.free(gpu.config.memory_bytes)
        assert gpu.allocated_bytes == 0

    def test_gpuless_machine_falls_back_to_cpu_fft(self):
        from repro.machine.config import TELLICO

        # Requesting GPUs on a GPU-less machine degrades gracefully to
        # the CPU 1-D FFT path rather than crashing mid-pipeline.
        app = FFT3DApp(n=64, grid=ProcessorGrid(2, 2), machine=TELLICO,
                       use_gpu=True, seed=1)
        assert not app.use_gpu
        app.run(slices_per_phase=1)
        assert app.cluster.clock > 0

    def test_nvml_event_for_missing_device(self):
        node = Node(SUMMIT, seed=1, noise=QUIET)
        papi = library_init(node, pmcd=start_pmcd_for_node(node))
        with pytest.raises(PapiNoEvent):
            papi.component("nvml").open_event(
                "nvml:::Tesla_V100-SXM2-16GB:device_42:power")


class TestCounterEdgeCases:
    def test_eventset_survives_counter_wrap_scale(self):
        # Counters are Python ints: exercise a very large value to show
        # no 32/64-bit wrap artifacts exist in the pipeline.
        node = Node(SUMMIT, seed=1, noise=QUIET)
        papi = library_init(node, pmcd=start_pmcd_for_node(node))
        es = papi.create_eventset()
        es.add_event(f"pcp:::{METRIC}:cpu87")
        es.start()
        node.socket(0).record_traffic(read_bytes=8 * (1 << 62))
        assert es.stop()[0] == 1 << 62

    def test_concurrent_eventsets_independent(self):
        node = Node(SUMMIT, seed=1, noise=QUIET)
        papi = library_init(node, pmcd=start_pmcd_for_node(node))
        es1 = papi.create_eventset()
        es2 = papi.create_eventset()
        for es in (es1, es2):
            es.add_event(f"pcp:::{METRIC}:cpu87")
        es1.start()
        node.socket(0).record_traffic(read_bytes=8 * 64)
        es2.start()  # starts later: sees only later traffic
        node.socket(0).record_traffic(read_bytes=8 * 64)
        assert es1.stop()[0] == 128
        assert es2.stop()[0] == 64
