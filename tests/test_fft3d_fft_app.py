"""Distributed 3D-FFT numerics and the instrumented cluster app."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fft3d.app import FFT3DApp
from repro.fft3d.fft import FORWARD_PHASES, Distributed3DFFT
from repro.machine.config import SUMMIT
from repro.mpi.grid import ProcessorGrid
from repro.noise import QUIET


class TestNumerics:
    @pytest.mark.parametrize("r,c,n", [(2, 4, 16), (4, 2, 16), (2, 2, 8),
                                       (1, 1, 8), (1, 4, 8)])
    def test_matches_numpy_fftn(self, r, c, n):
        fft = Distributed3DFFT(n, ProcessorGrid(r, c))
        rng = np.random.default_rng(42)
        a = rng.standard_normal((n, n, n)) + 1j * rng.standard_normal(
            (n, n, n))
        assert np.allclose(fft.forward_global(a), np.fft.fftn(a))

    def test_linearity(self):
        fft = Distributed3DFFT(8, ProcessorGrid(2, 2))
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 8, 8)) + 0j
        b = rng.standard_normal((8, 8, 8)) + 0j
        lhs = fft.forward_global(a + 2 * b)
        rhs = fft.forward_global(a) + 2 * fft.forward_global(b)
        assert np.allclose(lhs, rhs)

    def test_impulse_transform_is_flat(self):
        # FFT of a delta at the origin is all-ones.
        fft = Distributed3DFFT(8, ProcessorGrid(2, 2))
        a = np.zeros((8, 8, 8), dtype=complex)
        a[0, 0, 0] = 1.0
        assert np.allclose(fft.forward_global(a), np.ones((8, 8, 8)))

    def test_block_count_validation(self):
        fft = Distributed3DFFT(8, ProcessorGrid(2, 2))
        with pytest.raises(ConfigurationError):
            fft.forward_blocks([np.zeros((4, 4, 8), dtype=complex)])

    def test_indivisible_n_rejected(self):
        with pytest.raises(Exception):
            Distributed3DFFT(10, ProcessorGrid(2, 4))


class TestPhaseStructure:
    def test_nine_phases(self):
        kinds = [p.kind for p in FORWARD_PHASES]
        assert kinds.count("fft") == 3
        assert kinds.count("resort") == 4
        assert kinds.count("all2all") == 2

    def test_resort_order_alternates(self):
        routines = [p.routine for p in FORWARD_PHASES if p.kind == "resort"]
        assert routines == ["S1CF", "S2CF", "S1PF", "S2PF"]


class TestApp:
    def make_app(self, **kw):
        kw.setdefault("n", 128)
        kw.setdefault("grid", ProcessorGrid(2, 4))
        kw.setdefault("seed", 5)
        kw.setdefault("noise", QUIET)
        return FFT3DApp(**kw)

    def test_cluster_sizing(self):
        app = self.make_app()
        assert app.cluster.n_nodes == 4  # 8 ranks / 2 sockets
        assert app.comm.size == 8

    def test_grid_must_fill_nodes(self):
        with pytest.raises(ConfigurationError):
            FFT3DApp(n=64, grid=ProcessorGrid(1, 3), machine=SUMMIT)

    def test_run_records_resort_traffic(self):
        app = self.make_app()
        app.run(slices_per_phase=1)
        s1 = app.resort_summary("s1cf")
        s2 = app.resort_summary("s2cf")
        assert len(s1) == 8 and len(s2) == 8
        for rec in s1:
            assert rec.reads_per_write == pytest.approx(2.0, rel=0.05)
        for rec in s2:
            assert rec.reads_per_write == pytest.approx(1.0, rel=0.05)

    def test_run_advances_all_clocks_in_lockstep(self):
        app = self.make_app()
        app.run(slices_per_phase=1)
        clocks = [node.clock for node in app.cluster.nodes]
        assert max(clocks) - min(clocks) < 1e-12
        assert clocks[0] > 0

    def test_gpu_phases_drive_power_and_dma(self):
        app = self.make_app(use_gpu=True)
        app.run(slices_per_phase=1)
        gpu = app.cluster.nodes[0].gpus_on_socket(0)[0]
        assert gpu.flops_executed > 0
        assert gpu.h2d_bytes == gpu.d2h_bytes > 0

    def test_cpu_variant_runs_without_gpus(self):
        app = self.make_app(use_gpu=False)
        app.run(slices_per_phase=1)
        gpu = app.cluster.nodes[0].gpus_on_socket(0)[0]
        assert gpu.flops_executed == 0

    def test_all2all_hits_the_network(self):
        app = self.make_app()
        app.run(slices_per_phase=1)
        total_recv = sum(nic.recv_octets
                         for node in app.cluster.nodes
                         for nic in node.nics)
        assert total_recv > 0

    def test_steps_need_positive_slices(self):
        app = self.make_app()
        with pytest.raises(ConfigurationError):
            app.steps(slices_per_phase=0)

    def test_prefetch_flag_changes_resort_traffic(self):
        plain = self.make_app()
        plain.run(slices_per_phase=1)
        flagged = self.make_app(compiler_flags="-fprefetch-loop-arrays")
        flagged.run(slices_per_phase=1)
        # S2CF: 1 read/write without the flag, 2 with it (dcbtst).
        r_plain = plain.resort_summary("s2cf")[0].reads_per_write
        r_flag = flagged.resort_summary("s2cf")[0].reads_per_write
        assert r_plain == pytest.approx(1.0, rel=0.05)
        assert r_flag == pytest.approx(2.0, rel=0.05)
