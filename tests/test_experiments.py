"""Experiment registry and the qualitative claims of every reproduction.

These are the integration tests that pin the *shape* of each table and
figure: who wins, by what factor, where crossovers fall. Small sweeps
keep them fast; the full sweeps run in the benchmarks.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import all_experiments, get_experiment, run_experiment

SEED = 20230613


PAPER_ITEMS = {"table1", "table2", "fig2", "fig3", "fig4", "fig5",
               "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}


class TestRegistry:
    def test_every_paper_item_registered(self):
        ids = {e.experiment_id for e in all_experiments()}
        assert PAPER_ITEMS <= ids
        # Anything beyond the paper must be clearly marked an extension.
        assert all(extra.startswith("ext-") for extra in ids - PAPER_ITEMS)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_render_smoke(self):
        result = run_experiment("table1", seed=SEED)
        text = result.render()
        assert "Summit" in text and "Tellico" in text


class TestTable1:
    def test_event_spellings(self):
        result = run_experiment("table1", seed=SEED)
        summit = result.extras["summit_events"]
        tellico = result.extras["tellico_events"]
        assert ("pcp:::perfevent.hwcounters.nest_mba0_imc."
                "PM_MBA0_READ_BYTES.value:cpu87") in summit
        assert ("pcp:::perfevent.hwcounters.nest_mba7_imc."
                "PM_MBA7_WRITE_BYTES.value:cpu175") in summit
        assert "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0" in tellico

    def test_privilege_asymmetry(self):
        result = run_experiment("table1", seed=SEED)
        assert not result.extras["summit_uncore_available"]
        assert result.extras["tellico_uncore_available"]


class TestTable2:
    def test_supplemental_events(self):
        result = run_experiment("table2", seed=SEED)
        assert any("Tesla_V100" in e and ":power" in e
                   for e in result.extras["nvml_events"])
        assert "infiniband:::mlx5_0_1_ext:port_recv_data" in \
            result.extras["ib_events"]
        assert "infiniband:::mlx5_1_1_ext:port_recv_data" in \
            result.extras["ib_events"]


SMALL = (64, 256, 720, 1024, 2048)


class TestFig2:
    def test_single_rep_noisy_small_and_divergent_large(self):
        result = run_experiment("fig2", sizes=SMALL, seed=SEED)
        for rows in (result.extras["summit"], result.extras["tellico"]):
            by_n = {r[0]: r for r in rows}
            # Small problems: measured read is way off expectation.
            assert abs(by_n[64][7] - 1.0) > 0.5
            # Large problems (cached, single thread): diverges upward.
            assert by_n[2048][7] > 1.5

    def test_pcp_and_direct_agree_qualitatively(self):
        result = run_experiment("fig2", sizes=SMALL, seed=SEED)
        summit = {r[0]: r[7] for r in result.extras["summit"]}
        tellico = {r[0]: r[7] for r in result.extras["tellico"]}
        # Both paths diverge in the same direction at every size.
        for n in (1024, 2048):
            assert summit[n] > 1.3 and tellico[n] > 1.3


class TestFig3:
    def test_repetitions_clean_up_small_sizes(self):
        fig2 = run_experiment("fig2", sizes=(64, 256), seed=SEED)
        fig3 = run_experiment("fig3", sizes=(64, 256), seed=SEED)
        noisy = {r[0]: abs(r[7] - 1) for r in fig2.extras["summit"]}
        clean = {r[0]: abs(r[7] - 1) for r in fig3.extras["single"]}
        assert clean[64] < noisy[64]

    def test_batched_matches_then_jumps(self):
        result = run_experiment("fig3", sizes=(256, 720, 1024, 2048),
                                seed=SEED)
        batched = {r[0]: r[7] for r in result.extras["batched"]}
        # Below the 5 MB per-core boundary (N<809): matches.
        assert batched[256] == pytest.approx(1.0, abs=0.05)
        assert batched[720] == pytest.approx(1.0, abs=0.05)
        # Past it: "jumps drastically".
        assert batched[1024] > 50
        assert batched[2048] > 100

    def test_single_thread_no_jump_at_809(self):
        result = run_experiment("fig3", sizes=(720, 1024), seed=SEED)
        single = {r[0]: r[7] for r in result.extras["single"]}
        # Gradual (same order of magnitude), unlike the batched jump.
        assert single[1024] < 10 * single[720]


class TestFig4:
    def test_direct_path_same_shape_as_pcp(self):
        fig3 = run_experiment("fig3", sizes=(256, 2048), seed=SEED)
        fig4 = run_experiment("fig4", sizes=(256, 2048), seed=SEED)
        for key in ("single", "batched"):
            a = {r[0]: r[7] for r in fig3.extras[key]}
            b = {r[0]: r[7] for r in fig4.extras[key]}
            assert (a[256] > 2) == (b[256] > 2)
            assert (a[2048] > 2) == (b[2048] > 2)


class TestFig5:
    SIZES = (512, 1280, 4096, 16384, 262144)

    def test_reads_track_expectation_everywhere(self):
        result = run_experiment("fig5", sizes=self.SIZES, seed=SEED)
        for rows in (result.extras["summit"], result.extras["tellico"]):
            for row in rows:
                assert row[8] == pytest.approx(1.0, abs=0.35)

    def test_writes_converge_only_past_1e4(self):
        result = run_experiment("fig5", sizes=self.SIZES, seed=SEED)
        for rows in (result.extras["summit"], result.extras["tellico"]):
            by_m = {r[0]: r[9] for r in rows}
            assert by_m[512] > 1.5          # extraneous writes
            assert by_m[262144] < 1.25      # settled

    def test_regime_transition_at_1280(self):
        result = run_experiment("fig5", sizes=self.SIZES, seed=SEED)
        regimes = {r[0]: r[2] for r in result.extras["summit"]}
        assert regimes[1280] == "square"
        assert regimes[4096] == "capped"


RESORT_SIZES = (256, 512, 1024)


class TestFig6:
    def test_bypass_vs_prefetch(self):
        result = run_experiment("fig6", sizes=RESORT_SIZES, seed=SEED)
        plain = {r[0]: r for r in result.extras["plain"]}
        flagged = {r[0]: r for r in result.extras["prefetch"]}
        # At the stable size: ~1 read/elem plain, ~2 with dcbtst.
        assert plain[1024][2] == pytest.approx(1.0, abs=0.1)
        assert flagged[1024][2] == pytest.approx(2.0, abs=0.15)


class TestFig7:
    def test_ramp_to_five_reads(self):
        result = run_experiment("fig7", sizes=(512, 1024), seed=SEED)
        plain = {r[0]: r for r in result.extras["plain"]}
        assert plain[512][2] == pytest.approx(2.0, abs=0.2)
        assert plain[1024][2] == pytest.approx(5.0, abs=0.3)
        assert result.extras["eq7_boundary"] == pytest.approx(724, abs=1)

    def test_prefetch_improves_bandwidth(self):
        result = run_experiment("fig7", sizes=(1024,), seed=SEED)
        plain_bw = result.extras["plain"][0][8]
        flagged_bw = result.extras["prefetch"][0][8]
        assert flagged_bw > 2 * plain_bw


class TestFig8:
    def test_two_reads_one_write_at_all_sizes(self):
        result = run_experiment("fig8", sizes=RESORT_SIZES, seed=SEED)
        for row in result.extras["plain"]:
            if row[0] >= 512:  # skip the noisy smallest size
                assert row[2] == pytest.approx(2.0, abs=0.2)
                assert row[4] == pytest.approx(1.0, abs=0.15)


class TestFig9:
    def test_one_to_one_vs_two_to_one(self):
        result = run_experiment("fig9", sizes=(1024,), seed=SEED)
        assert result.extras["plain"][0][2] == pytest.approx(1.0, abs=0.1)
        assert result.extras["prefetch"][0][2] == pytest.approx(2.0,
                                                                abs=0.15)


class TestFig10:
    def test_ratios_at_scale(self):
        result = run_experiment("fig10", sizes=(1344,), n_runs=2, seed=SEED)
        per = result.extras["per_routine"]
        assert per["s1cf"][1344]["ratio"] == pytest.approx(2.0, abs=0.1)
        assert per["s2cf"][1344]["ratio"] == pytest.approx(1.0, abs=0.1)


class TestFig11:
    def test_phase_signatures(self):
        result = run_experiment("fig11", n=512, slices_per_phase=2,
                                seed=SEED)
        totals = result.extras["phase_totals"]
        # Resort ratios.
        s1 = totals["s1cf"]
        s2 = totals["s2cf"]
        assert s1["read_bytes"] / s1["write_bytes"] == pytest.approx(
            2.0, abs=0.2)
        assert s2["read_bytes"] / s2["write_bytes"] == pytest.approx(
            1.0, abs=0.2)
        # Network activity only in the All2All phases.
        for name, agg in totals.items():
            if name.startswith("all2all"):
                assert agg["net_recv_bytes"] > 0
            else:
                assert agg["net_recv_bytes"] == 0
        # GPU energy concentrated in the FFT phases.
        fft_power = totals["fft-z"]["gpu_energy_j"] / totals["fft-z"]["seconds"]
        resort_power = totals["s1cf"]["gpu_energy_j"] / totals["s1cf"]["seconds"]
        assert fft_power > resort_power

    def test_gpu_spike_between_read_and_write_bursts(self):
        result = run_experiment("fig11", n=512, slices_per_phase=1,
                                seed=SEED)
        timeline = result.extras["timeline"]
        fft_samples = timeline.phase("fft-z")
        assert len(fft_samples) == 3  # H2D, kernel, D2H
        h2d, kernel, d2h = fft_samples
        assert h2d.mem_read_rate > 10 * h2d.mem_write_rate
        assert kernel.gpu_power_w > 250
        assert d2h.mem_write_rate > 10 * d2h.mem_read_rate


class TestFig12:
    def test_phases_distinguishable(self):
        result = run_experiment("fig12", n_nodes=1, seed=SEED)
        totals = result.extras["phase_totals"]
        power = {name: agg["gpu_energy_j"] / agg["seconds"]
                 for name, agg in totals.items()}
        assert power["vmc-nodrift"] < power["vmc-drift"] < power["dmc"]

    def test_physics_sane(self):
        result = run_experiment("fig12", n_nodes=1, seed=SEED)
        energies = result.extras["energies"]
        exact = result.extras["exact_energy"]
        for phase, energy in energies.items():
            assert energy == pytest.approx(exact, abs=0.2), phase
