"""Additional property-based tests (devices, collectives, kernels)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.analytic import CacheContext
from repro.engine.exact import ExactEngine
from repro.gpu.power import PowerLog
from repro.kernels.blas import CappedGemv
from repro.kernels.stream import StreamKernel
from repro.machine.config import CacheConfig
from repro.mpi.grid import ProcessorGrid
from repro.qmc.vmc import VMC
from repro.qmc.wavefunction import HarmonicOscillator
from repro.units import MIB


class TestPowerLogProperties:
    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0.001, 10),
                              st.floats(50, 300)),
                    min_size=0, max_size=10))
    @settings(max_examples=50)
    def test_energy_additive_over_partitions(self, intervals):
        log = PowerLog(40.0)
        for t0, dur, w in intervals:
            log.add_interval(t0, t0 + dur, w)
        total = log.energy_joules(0.0, 200.0)
        split = (log.energy_joules(0.0, 77.0)
                 + log.energy_joules(77.0, 200.0))
        assert abs(total - split) < 1e-6 * max(1.0, abs(total))

    @given(st.floats(0, 100), st.floats(0, 100))
    @settings(max_examples=50)
    def test_power_never_below_idle(self, t0, t1):
        log = PowerLog(40.0)
        log.add_interval(10.0, 20.0, 250.0)
        assert log.power_at(t0) >= 40.0
        lo, hi = min(t0, t1), max(t0, t1)
        if hi > lo:
            assert log.average_power(lo, hi) >= 40.0 - 1e-9


class TestGridProperties:
    @given(st.integers(1, 16), st.integers(1, 16))
    @settings(max_examples=50)
    def test_rank_coordinate_bijection(self, r, c):
        grid = ProcessorGrid(r, c)
        seen = set()
        for rank in range(grid.size):
            coords = grid.coords_of(rank)
            assert grid.rank_of(*coords) == rank
            seen.add(coords)
        assert len(seen) == grid.size

    @given(st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=30)
    def test_rows_and_columns_partition_ranks(self, r, c):
        grid = ProcessorGrid(r, c)
        from_rows = sorted(x for i in range(r) for x in grid.row_ranks(i))
        from_cols = sorted(x for j in range(c) for x in grid.col_ranks(j))
        assert from_rows == list(range(grid.size))
        assert from_cols == list(range(grid.size))


class TestKernelLawProperties:
    @given(st.sampled_from(["copy", "scale", "add", "triad"]),
           st.integers(64, 1024))
    @settings(max_examples=20, deadline=None)
    def test_stream_exact_equals_analytic(self, op, n):
        kernel = StreamKernel(op, n)
        engine = ExactEngine(CacheConfig(capacity_bytes=MIB))
        exact = engine.run_nest(kernel.streams(), kernel.exact_accesses())
        analytic = kernel.traffic(CacheContext(capacity_bytes=MIB))
        assert tuple(exact) == tuple(analytic)

    @given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_capped_gemv_law_bounds(self, m, n, p):
        if p > m:
            p = m
        kernel = CappedGemv(m=m, n=n, p=p)
        ctx = CacheContext(capacity_bytes=5 * MIB)
        law = kernel.traffic(ctx)
        expected = kernel.expected_traffic()
        # The law never reads less than the cold footprint and never
        # more than the streaming expectation (granule-rounded).
        assert law.read_bytes >= kernel.p * kernel.n * 8
        assert law.read_bytes <= expected.read_bytes + 3 * 64
        # Writes are exactly y (granule rounded) under write-allocate.
        assert abs(law.write_bytes - m * 8) < 64 + 1


class TestQMCProperties:
    @given(st.floats(0.5, 2.5))
    @settings(max_examples=10, deadline=None)
    def test_vmc_energy_above_ground_state(self, alpha):
        """Variational principle: <E>(α) >= E0 for every trial."""
        psi = HarmonicOscillator(alpha=round(alpha, 3))
        sampler = VMC(psi, n_walkers=1024, seed=11)
        sampler.run(n_blocks=3, steps_per_block=10, warmup_blocks=1)
        stats = sampler.block(10)
        assert stats.energy >= 1.5 - 4 * max(stats.error_bar, 1e-9)
