"""The pcp-load harness: sustained async load with fault injection.

Short windows keep the suite fast; the CI nightly smoke runs the
full-scale version (256 contexts, 60 s, 10k/s floor).
"""

import pytest

from repro.pcp.load import (
    LATENCY_BUCKETS_USEC,
    healthy,
    latency_histogram,
    percentile_usec,
    run_load,
)


def small_load(**kwargs):
    kwargs.setdefault("n_contexts", 8)
    kwargs.setdefault("duration_seconds", 0.4)
    kwargs.setdefault("pipeline_depth", 2)
    return run_load(**kwargs)


class TestHealthyRun:
    def test_baseline_run_is_healthy(self):
        report = small_load()
        assert healthy(report), report["errors"]
        assert report["total_fetches"] > 0
        assert report["fetches_per_second"] > 0
        assert report["coalesced"] > 0
        assert report["cross_wired"] == 0
        assert report["non_monotone_timestamps"] == 0

    def test_histogram_counts_every_fetch(self):
        report = small_load()
        hist = report["latency_histogram"]
        assert sum(hist.values()) == report["total_fetches"]
        assert report["latency_p50_usec"] <= report["latency_p99_usec"] \
            <= report["latency_max_usec"]

    def test_no_coalesce_costs_more_pmda_reads(self):
        coalesced = small_load(seed=3)
        naive = small_load(seed=3, coalesce=False)
        assert naive["coalesced"] == 0
        assert coalesced["coalesced"] > 0


class TestFaultScenarios:
    def test_shard_kills_recovered(self):
        report = small_load(shard_kills=1)
        assert healthy(report), report["errors"]
        assert report["shard_kills"] == 1
        assert report["shard_restarts"] >= 1

    def test_dropped_connections_recovered(self):
        report = small_load(drop_connections=2)
        assert healthy(report), report["errors"]
        assert report["client_reconnects"] >= 1
        assert report["faults_injected"] >= 2

    def test_slow_pmda_absorbed(self):
        report = small_load(slow_pmda=1, slow_pmda_seconds=0.01)
        assert healthy(report), report["errors"]
        assert report["faults_injected"] == 1

    def test_archive_corruption_detected(self, tmp_path):
        report = small_load(corrupt_archive=True,
                            archive_dir=str(tmp_path))
        assert report["archive_corruption"] == "detected"
        assert healthy(report), report["errors"]

    def test_all_faults_together(self, tmp_path):
        report = small_load(n_contexts=12, duration_seconds=0.6,
                            shard_kills=1, slow_pmda=1,
                            drop_connections=2, corrupt_archive=True,
                            archive_dir=str(tmp_path))
        assert healthy(report), report["errors"]


class TestHealthPredicate:
    def test_errors_flip_health(self):
        report = small_load()
        assert healthy(report)
        bad = dict(report, errors=["context 0: boom"])
        assert not healthy(bad)
        assert not healthy(dict(report, cross_wired=1))
        assert not healthy(dict(report, non_monotone_timestamps=1))
        assert not healthy(dict(report, unrecovered_faults=1))
        assert not healthy(dict(report,
                                archive_corruption="undetected"))
        assert healthy(dict(report, archive_corruption="detected"))


class TestLatencyMath:
    def test_percentile_edges(self):
        assert percentile_usec([], 0.99) == 0
        assert percentile_usec([0.001], 0.5) == 1000
        sample = sorted([0.001 * i for i in range(1, 101)])
        assert percentile_usec(sample, 0.0) == 1000
        assert percentile_usec(sample, 1.0) == 100000

    def test_histogram_bucketing(self):
        hist = latency_histogram([50e-6, 150e-6, 0.9])
        assert hist["<=100us"] == 1
        assert hist["<=200us"] == 1
        assert hist[f">{LATENCY_BUCKETS_USEC[-1]}us"] == 1
        assert sum(hist.values()) == 3
