"""Noise calibration: recovering the injected noise parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.blas import Gemm
from repro.measure.calibration import CalibrationResult, NoiseCalibrator
from repro.measure.session import MeasurementSession
from repro.noise import QUIET, NoiseConfig


class TestFit:
    def test_quiet_system_has_no_excess(self):
        session = MeasurementSession("summit", seed=9, noise=QUIET)
        calibrator = NoiseCalibrator(session, rep_sweep=(1, 4, 16),
                                     runs_per_point=2)
        fit = calibrator.calibrate(Gemm(128))
        assert abs(fit.steady_excess) < 1000
        assert abs(fit.window_excess) < 1000
        assert fit.residual_rms < 1000

    def test_recovers_injected_fixed_window_bytes(self):
        # Deterministic noise: ONLY a fixed per-window read component.
        cfg = NoiseConfig(
            background_read_rate=0.0, background_write_rate=0.0,
            background_sigma=0.0, capture_sigma0=0.0,
            fixed_read_bytes=5e6, fixed_write_bytes=0.0,
            per_rep_read_bytes=0.0, per_rep_write_bytes=0.0,
            window_overhead_pcp=0.0, window_overhead_direct=0.0,
        )
        session = MeasurementSession("summit", seed=9, noise=cfg)
        fit = NoiseCalibrator(session, rep_sweep=(1, 2, 4, 8, 16),
                              runs_per_point=3).calibrate(Gemm(96))
        assert fit.window_excess == pytest.approx(5e6, rel=0.05)
        assert abs(fit.steady_excess) < 0.05 * 5e6

    def test_recovers_injected_per_rep_bytes(self):
        cfg = NoiseConfig(
            background_read_rate=0.0, background_write_rate=0.0,
            background_sigma=0.0, capture_sigma0=0.0,
            fixed_read_bytes=0.0, fixed_write_bytes=0.0,
            per_rep_read_bytes=3e5, per_rep_write_bytes=0.0,
            window_overhead_pcp=0.0, window_overhead_direct=0.0,
        )
        session = MeasurementSession("summit", seed=9, noise=cfg)
        fit = NoiseCalibrator(session, rep_sweep=(1, 4, 16),
                              runs_per_point=3).calibrate(Gemm(96))
        assert fit.steady_excess == pytest.approx(3e5, rel=0.05)
        assert abs(fit.window_excess) < 0.1 * 3e5

    def test_validation(self):
        session = MeasurementSession("summit", seed=9, noise=QUIET)
        with pytest.raises(ConfigurationError):
            NoiseCalibrator(session, rep_sweep=(5,))
        with pytest.raises(ConfigurationError):
            NoiseCalibrator(session, runs_per_point=0)


class TestPolicyDerivation:
    def test_repetitions_shrink_with_kernel_size(self):
        # Bigger kernels need fewer repetitions for the same tolerance —
        # Eq. 5's rationale, derived from the fitted model.
        session = MeasurementSession("summit", seed=9)
        calibrator = NoiseCalibrator(session, rep_sweep=(1, 4, 16, 64),
                                     runs_per_point=4)
        small = calibrator.calibrate(Gemm(384))
        large = calibrator.calibrate(Gemm(1024))
        r_small = small.repetitions_for_tolerance(0.25)
        r_large = large.repetitions_for_tolerance(0.25)
        assert r_small is not None and r_large is not None
        assert r_large < r_small

    def test_small_kernels_can_be_unfixable(self):
        # Per-repetition overhead is a bias repetitions cannot remove:
        # tight tolerances are unachievable for tiny kernels — the
        # paper's "small kernels ... fraught with noise" in fit form.
        session = MeasurementSession("summit", seed=9)
        calibrator = NoiseCalibrator(session, rep_sweep=(1, 4, 16),
                                     runs_per_point=3)
        fit = calibrator.calibrate(Gemm(96))
        assert fit.repetitions_for_tolerance(0.05) is None

    def test_unachievable_tolerance_returns_none(self):
        fit = CalibrationResult(kernel="x", true_read_bytes=1000.0,
                                steady_excess=500.0, window_excess=1e6,
                                residual_rms=0.0)
        assert fit.repetitions_for_tolerance(0.1) is None

    def test_no_window_excess_needs_one_rep(self):
        fit = CalibrationResult(kernel="x", true_read_bytes=1e6,
                                steady_excess=0.0, window_excess=0.0,
                                residual_rms=0.0)
        assert fit.repetitions_for_tolerance(0.05) == 1

    def test_tolerance_validation(self):
        fit = CalibrationResult("x", 1.0, 0.0, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            fit.repetitions_for_tolerance(0.0)
