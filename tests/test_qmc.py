"""QMC physics: wavefunctions, VMC, DMC, and the instrumented app."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise import QUIET
from repro.qmc.app import QMCPACKApp
from repro.qmc.dmc import DMC
from repro.qmc.dmc import mean_energy as dmc_mean
from repro.qmc.vmc import VMC, mean_energy
from repro.qmc.wavefunction import HarmonicOscillator, HydrogenAtom


class TestWavefunctions:
    def test_ho_local_energy_exact_trial_is_constant(self):
        psi = HarmonicOscillator(alpha=1.0)
        r = np.random.default_rng(0).standard_normal((100, 3))
        assert np.allclose(psi.local_energy(r), 1.5)

    def test_ho_variational_energy_minimised_at_alpha_one(self):
        energies = {a: HarmonicOscillator(a).variational_energy()
                    for a in (0.5, 0.8, 1.0, 1.3, 2.0)}
        assert min(energies, key=energies.get) == 1.0
        assert energies[1.0] == 1.5

    def test_ho_drift_is_gradient_of_log_psi(self):
        psi = HarmonicOscillator(alpha=1.3)
        r = np.random.default_rng(1).standard_normal((5, 3))
        eps = 1e-6
        for dim in range(3):
            shifted = r.copy()
            shifted[:, dim] += eps
            numeric = (psi.log_psi(shifted) - psi.log_psi(r)) / eps
            assert np.allclose(psi.drift(r)[:, dim], numeric, atol=1e-4)

    def test_hydrogen_exact_trial(self):
        psi = HydrogenAtom(beta=1.0)
        r = psi.initial_walkers(100, np.random.default_rng(2))
        assert np.allclose(psi.local_energy(r), -0.5)

    def test_hydrogen_variational_energy(self):
        assert HydrogenAtom(beta=1.0).variational_energy() == -0.5
        assert HydrogenAtom(beta=0.8).variational_energy() == \
            pytest.approx(0.5 * 0.64 - 0.8)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            HarmonicOscillator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            HydrogenAtom(beta=-1.0)


class TestVMC:
    def test_zero_variance_for_exact_trial(self):
        v = VMC(HarmonicOscillator(1.0), n_walkers=128, seed=1)
        stats = v.block(10)
        assert stats.energy == pytest.approx(1.5)
        assert stats.variance == pytest.approx(0.0, abs=1e-12)

    def test_reproduces_variational_energy(self):
        psi = HarmonicOscillator(alpha=1.4)
        v = VMC(psi, n_walkers=2048, drift=False, seed=2)
        blocks = v.run(n_blocks=25, steps_per_block=15)
        assert mean_energy(blocks) == pytest.approx(
            psi.variational_energy(), abs=0.03)

    def test_drift_mover_reproduces_variational_energy(self):
        psi = HarmonicOscillator(alpha=0.7)
        v = VMC(psi, n_walkers=2048, drift=True, seed=3)
        blocks = v.run(n_blocks=25, steps_per_block=15)
        assert mean_energy(blocks) == pytest.approx(
            psi.variational_energy(), abs=0.03)

    def test_drift_raises_acceptance(self):
        psi = HarmonicOscillator(alpha=1.0)
        plain = VMC(psi, n_walkers=512, drift=False, seed=4, timestep=0.5)
        smart = VMC(psi, n_walkers=512, drift=True, seed=4, timestep=0.5)
        plain.run(n_blocks=5)
        smart.run(n_blocks=5)
        assert smart.acceptance_ratio > plain.acceptance_ratio

    def test_hydrogen_vmc(self):
        psi = HydrogenAtom(beta=0.9)
        v = VMC(psi, n_walkers=2048, drift=True, seed=5, timestep=0.2)
        blocks = v.run(n_blocks=25, steps_per_block=15)
        assert mean_energy(blocks) == pytest.approx(
            psi.variational_energy(), abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VMC(HarmonicOscillator(), n_walkers=0)
        with pytest.raises(ConfigurationError):
            VMC(HarmonicOscillator(), timestep=0.0)
        v = VMC(HarmonicOscillator(), n_walkers=8, seed=1)
        with pytest.raises(ConfigurationError):
            v.block(0)


class TestDMC:
    def test_projects_to_ground_state(self):
        d = DMC(HarmonicOscillator(alpha=1.3), n_walkers=1024,
                timestep=0.01, seed=3)
        blocks = d.run(n_blocks=40, steps_per_block=20, warmup_blocks=10)
        assert dmc_mean(blocks) == pytest.approx(1.5, abs=0.05)

    def test_population_controlled(self):
        d = DMC(HarmonicOscillator(alpha=1.5), n_walkers=512,
                timestep=0.02, seed=4)
        blocks = d.run(n_blocks=20, warmup_blocks=5)
        pops = [b.population for b in blocks]
        assert all(256 < p < 1024 for p in pops)

    def test_hydrogen_ground_state(self):
        d = DMC(HydrogenAtom(beta=0.9), n_walkers=1024, timestep=0.01,
                seed=5)
        blocks = d.run(n_blocks=30, warmup_blocks=10)
        assert dmc_mean(blocks) == pytest.approx(-0.5, abs=0.03)

    def test_exact_trial_zero_fluctuation(self):
        d = DMC(HarmonicOscillator(alpha=1.0), n_walkers=256,
                timestep=0.02, seed=6)
        stats = d.block(10)
        assert stats.energy == pytest.approx(1.5)
        assert stats.population == 256  # unit weights, no branching loss

    def test_rebalance_plan_conserves_walkers(self):
        d = DMC(HarmonicOscillator(alpha=1.2), n_walkers=777, seed=7)
        d.block(5)
        plan = d.rebalance_plan(8)
        moved_out = {}
        moved_in = {}
        for src, dst, count in plan:
            assert count > 0 and src != dst
            moved_out[src] = moved_out.get(src, 0) + count
            moved_in[dst] = moved_in.get(dst, 0) + count
        # No rank both donates and receives.
        assert not (set(moved_out) & set(moved_in))

    def test_rebalance_needs_ranks(self):
        d = DMC(HarmonicOscillator(), n_walkers=64, seed=8)
        with pytest.raises(ConfigurationError):
            d.rebalance_plan(0)


class TestQMCApp:
    def test_phase_step_counts(self):
        app = QMCPACKApp(n_nodes=1, seed=9, noise=QUIET,
                         sample_walkers=64, hw_walkers_per_rank=1024)
        steps = app.steps()
        assert len(steps) == 6 + 6 + 8

    def test_run_produces_physics_and_traffic(self):
        app = QMCPACKApp(n_nodes=1, seed=9, noise=QUIET,
                         sample_walkers=128, hw_walkers_per_rank=1024)
        app.run()
        assert len(app.results["dmc"]) == 8
        vmc_e = np.mean([b.energy for b in app.results["vmc-nodrift"]])
        assert vmc_e == pytest.approx(app.psi.variational_energy(),
                                      abs=0.1)
        sock = app.cluster.nodes[0].socket(0)
        assert sock.memory.total_read_bytes > 0

    def test_dmc_phase_uses_network(self):
        app = QMCPACKApp(n_nodes=2, seed=9, noise=QUIET,
                         sample_walkers=128, hw_walkers_per_rank=4096)
        app.run()
        recv = sum(nic.recv_octets for node in app.cluster.nodes
                   for nic in node.nics)
        assert recv > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QMCPACKApp(n_nodes=1, sample_walkers=0)
