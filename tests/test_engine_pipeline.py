"""Differential tests for the segment-pipelined exact engine.

DESIGN.md §6.3: segment boundaries must be invisible — every kernel's
``segments()`` emitter must concatenate byte-identically to its
monolithic ``exact_trace()``, and the pipelined engine (inline or
through the persistent worker pool) must reproduce the batch engine's
traffic, hit and miss counts exactly, for any segment size, ring
depth, and worker count. Checkpointed multi-kernel runs must resume
after a fault without changing a single byte of the totals.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.envconfig import (
    CHUNK_ROWS_ENV,
    N_SHARDS_ENV,
    RING_DEPTH_ENV,
    SEGMENT_ROWS_ENV,
    default_chunk_rows,
    default_ring_depth,
    default_segment_rows,
    env_n_shards,
    resolve_segment_rows,
)
from repro.engine.exact import ExactEngine, ShardedExactEngine
from repro.engine.loopnest import AffineAccess, LoopNest
from repro.engine.pipeline import PipelinedExactEngine
from repro.errors import SimulationError
from repro.fft3d.decomp import LocalBlock
from repro.fft3d.resort import S1CB, S2CF
from repro.kernels.blas import CappedGemv, Dot, Gemm
from repro.kernels.sparse import SpmvKernel, random_csr
from repro.kernels.stream import StreamKernel
from repro.machine.config import CacheConfig

SMALL = CacheConfig(capacity_bytes=64 * 1024)

BLOCK = LocalBlock(planes=4, rows=6, cols=8)

#: One representative per kernel family (plus fft3d resort shapes):
#: every ``segments()`` implementation in the tree is exercised.
FAMILY_KERNELS = [
    Dot(777),
    Gemm(10),
    CappedGemv(m=9, n=7, p=3),
    StreamKernel(op="triad", n=500),
    SpmvKernel(random_csr(40, 5, seed=1)),
    LoopNest(
        name="nest-dup-arrays",
        bounds=(5, 4, 3),
        accesses=[
            AffineAccess("A", coeffs=(4, 0, 1)),
            AffineAccess("A", coeffs=(0, 3, 1), offset=2),
            AffineAccess("B", coeffs=(0, 1, 4), is_write=True,
                         elem_bytes=4),
        ],
    ),
    S2CF(BLOCK),
    S1CB(BLOCK),
]

_IDS = [k.name for k in FAMILY_KERNELS]


def batch_reference(kernel):
    eng = ExactEngine(SMALL)
    traffic = eng.run_nest(kernel.streams(), kernel.exact_trace())
    return (traffic.read_bytes, traffic.write_bytes,
            eng.sim.stats_hits, eng.sim.stats_misses)


def pipelined_state(engine, traffic):
    return (traffic.read_bytes, traffic.write_bytes,
            engine.last_stats["hits"], engine.last_stats["misses"])


# ----------------------------------------------------------------------
# segment protocol: concat(segments) == exact_trace, any target_rows
# ----------------------------------------------------------------------
class TestSegmentProtocol:
    @given(kernel_i=st.integers(0, len(FAMILY_KERNELS) - 1),
           target_rows=st.one_of(
               st.integers(1, 64),
               st.integers(65, 5000),
               st.just(10**9)))
    @settings(max_examples=60, deadline=None)
    def test_segments_concatenate_to_exact_trace(self, kernel_i,
                                                 target_rows):
        kernel = FAMILY_KERNELS[kernel_i]
        ref = kernel.exact_trace()
        segs = list(kernel.segments(target_rows))
        assert segs, "segments() emitted nothing"
        assert all(len(s) > 0 for s in segs), "empty segment emitted"
        assert all(s.streams == ref.streams for s in segs)
        total = sum(len(s) for s in segs)
        assert total == len(ref)
        for col in ("addr", "size", "stream_id", "is_write"):
            got = np.concatenate([getattr(s, col) for s in segs])
            np.testing.assert_array_equal(got, getattr(ref, col), col)

    @pytest.mark.parametrize("kernel", FAMILY_KERNELS, ids=_IDS)
    def test_exact_trace_blocks_alias(self, kernel):
        """Back-compat: the old block emitter delegates to segments."""
        blocks = list(kernel.exact_trace_blocks())
        ref = kernel.exact_trace()
        assert sum(len(b) for b in blocks) == len(ref)

    def test_segments_reject_nonpositive_target(self):
        with pytest.raises(SimulationError):
            list(Dot(64).segments(0))
        with pytest.raises(SimulationError):
            list(Gemm(8).segments(-5))


# ----------------------------------------------------------------------
# hypothesis differential: pipelined inline == monolithic batch
# ----------------------------------------------------------------------
class TestInlinePipelineDifferential:
    @given(kernel_i=st.integers(0, len(FAMILY_KERNELS) - 1),
           segment_rows=st.integers(1, 2000))
    @settings(max_examples=40, deadline=None)
    def test_inline_matches_batch(self, kernel_i, segment_rows):
        kernel = FAMILY_KERNELS[kernel_i]
        ref = batch_reference(kernel)
        eng = PipelinedExactEngine(SMALL, n_workers=0,
                                   segment_rows=segment_rows)
        traffic = eng.run_kernel(kernel)
        assert pipelined_state(eng, traffic) == ref

    def test_inline_run_nest_from_batch_trace(self):
        kernel = Gemm(12)
        ref = batch_reference(kernel)
        eng = PipelinedExactEngine(SMALL, n_workers=0, segment_rows=97)
        traffic = eng.run_nest(kernel.streams(), kernel.exact_trace())
        assert pipelined_state(eng, traffic) == ref

    def test_rejects_partial_flush(self):
        kernel = Dot(128)
        eng = PipelinedExactEngine(SMALL, n_workers=0)
        with pytest.raises(SimulationError):
            eng.run_nest(kernel.streams(), kernel.exact_trace(),
                         flush_at_end=False)


# ----------------------------------------------------------------------
# worker-pool pipeline
# ----------------------------------------------------------------------
class TestPooledPipeline:
    @pytest.mark.parametrize("kernel", FAMILY_KERNELS, ids=_IDS)
    def test_pool_matches_batch(self, kernel):
        ref = batch_reference(kernel)
        with PipelinedExactEngine(SMALL, n_workers=2, segment_rows=131,
                                  ring_depth=3) as eng:
            traffic = eng.run_kernel(kernel)
            assert pipelined_state(eng, traffic) == ref

    def test_single_worker_and_tight_ring_backpressure(self):
        # ring_depth=1 forces a full producer/consumer handshake on
        # every segment; a slot-reuse race would corrupt the counters.
        kernel = Gemm(12)
        ref = batch_reference(kernel)
        for n_workers, depth in ((1, 1), (2, 1), (3, 2)):
            with PipelinedExactEngine(SMALL, n_workers=n_workers,
                                      segment_rows=53,
                                      ring_depth=depth) as eng:
                traffic = eng.run_kernel(kernel)
                assert pipelined_state(eng, traffic) == ref, \
                    (n_workers, depth)

    def test_pool_persists_across_runs(self):
        with PipelinedExactEngine(SMALL, n_workers=2,
                                  segment_rows=211) as eng:
            eng.run_kernel(Gemm(10))
            pids = eng.worker_pids()
            assert len(pids) == 2
            eng.run_kernel(Dot(999))
            assert eng.worker_pids() == pids  # no respawn per kernel
            eng.run_many([Gemm(8), StreamKernel(op="triad", n=700)])
            assert eng.worker_pids() == pids

    def test_run_many_matches_per_kernel_runs(self):
        kernels = [Gemm(10), Dot(777),
                   StreamKernel(op="triad", n=900),
                   SpmvKernel(random_csr(30, 4, seed=2))]
        refs = [batch_reference(k) for k in kernels]
        with PipelinedExactEngine(SMALL, n_workers=2,
                                  segment_rows=149) as eng:
            results = eng.run_many(kernels)
        assert len(results) == len(kernels)
        for traffic, ref in zip(results, refs):
            assert (traffic.read_bytes, traffic.write_bytes) == ref[:2]

    def test_stored_trace_source(self, tmp_path):
        from repro.engine.tracestore import TraceStore

        kernel = Gemm(10)
        store = TraceStore(tmp_path / "store", verify="full")
        entry = store.get_or_create(kernel)
        ref = batch_reference(kernel)
        with PipelinedExactEngine(SMALL, n_workers=2,
                                  segment_rows=257) as eng:
            traffic = eng.run_nest(kernel.streams(), entry)
        entry.close()
        assert pipelined_state(eng, traffic) == ref

    def test_pipeline_stats_recorded(self):
        with PipelinedExactEngine(SMALL, n_workers=2,
                                  segment_rows=101) as eng:
            eng.run_kernel(Gemm(10))
            stats = eng.last_pipeline_stats
        assert stats["mode"] == "pool"
        assert stats["n_workers"] == 2
        assert stats["segments"] > 1
        assert stats["rows"] == len(Gemm(10).exact_trace())
        assert 0.0 <= stats["utilization"] <= 1.0
        assert stats["max_queue_depth"] <= eng.ring_depth
        assert stats["mean_queue_depth"] <= stats["max_queue_depth"]

    def test_dead_worker_detected(self):
        eng = PipelinedExactEngine(SMALL, n_workers=2, segment_rows=64)
        try:
            eng.run_kernel(Dot(500))
            os.kill(eng.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(SimulationError, match="died"):
                # Enough work that the producer must wait on the pool.
                eng.run_kernel(Gemm(24))
        finally:
            eng.close()

    def test_close_is_idempotent_and_engine_reusable(self):
        eng = PipelinedExactEngine(SMALL, n_workers=1, segment_rows=64)
        ref = batch_reference(Dot(300))
        traffic = eng.run_kernel(Dot(300))
        eng.close()
        eng.close()
        traffic2 = eng.run_kernel(Dot(300))  # pool respawns
        eng.close()
        assert (traffic.read_bytes, traffic.write_bytes) == ref[:2]
        assert (traffic2.read_bytes, traffic2.write_bytes) == ref[:2]


# ----------------------------------------------------------------------
# checkpoint / resume with fault injection
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_resume_after_hook_fault(self, tmp_path):
        kernels = [Gemm(10), Dot(777), StreamKernel(op="triad", n=800)]
        refs = [batch_reference(k) for k in kernels]

        calls = []

        def hook(worker_id):
            calls.append(worker_id)
            if len(calls) == 2:
                raise RuntimeError("injected fault")

        eng = PipelinedExactEngine(SMALL, n_workers=2, segment_rows=173,
                                   checkpoint_dir=tmp_path / "ckpt")
        eng.after_shard_hook = hook
        with pytest.raises(RuntimeError, match="injected fault"):
            eng.run_many(kernels)
        assert eng._pool is None  # pool torn down on fault

        fresh = PipelinedExactEngine(SMALL, n_workers=2,
                                     segment_rows=173,
                                     checkpoint_dir=tmp_path / "ckpt")
        with fresh:
            results = fresh.run_many(kernels)
        assert fresh.kernels_resumed >= 1
        for traffic, ref in zip(results, refs):
            assert (traffic.read_bytes, traffic.write_bytes) == ref[:2]

    def test_checkpoint_independent_of_worker_count(self, tmp_path):
        # Totals are identical regardless of sharding, so a checkpoint
        # written inline must satisfy a pooled rerun (and vice versa).
        kernel = Gemm(10)
        ref = batch_reference(kernel)
        inline = PipelinedExactEngine(SMALL, n_workers=0,
                                      checkpoint_dir=tmp_path / "c")
        inline.run_many([kernel])
        with PipelinedExactEngine(SMALL, n_workers=2,
                                  checkpoint_dir=tmp_path / "c") as eng:
            results = eng.run_many([kernel])
        assert eng.kernels_resumed == 1
        assert (results[0].read_bytes, results[0].write_bytes) == ref[:2]


# ----------------------------------------------------------------------
# env knobs: parse-time validation and plumbing
# ----------------------------------------------------------------------
class TestEnvKnobs:
    def test_defaults_without_env(self, monkeypatch):
        for env in (CHUNK_ROWS_ENV, SEGMENT_ROWS_ENV, N_SHARDS_ENV,
                    RING_DEPTH_ENV):
            monkeypatch.delenv(env, raising=False)
        assert default_chunk_rows() == 1 << 19
        assert default_segment_rows() == 1 << 20
        assert default_ring_depth() == 4
        assert env_n_shards() is None

    @pytest.mark.parametrize("env,resolver", [
        (CHUNK_ROWS_ENV, default_chunk_rows),
        (SEGMENT_ROWS_ENV, default_segment_rows),
        (RING_DEPTH_ENV, default_ring_depth),
        (N_SHARDS_ENV, env_n_shards),
    ])
    @pytest.mark.parametrize("bad", ["0", "-3", "1.5", "lots"])
    def test_bad_values_fail_at_parse_time(self, monkeypatch, env,
                                           resolver, bad):
        monkeypatch.setenv(env, bad)
        with pytest.raises(SimulationError, match=env):
            resolver()

    def test_env_overrides_are_read(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ROWS_ENV, "12345")
        monkeypatch.setenv(SEGMENT_ROWS_ENV, "777")
        monkeypatch.setenv(RING_DEPTH_ENV, "9")
        monkeypatch.setenv(N_SHARDS_ENV, "12")
        assert default_chunk_rows() == 12345
        assert resolve_segment_rows(None) == 777
        assert resolve_segment_rows(55) == 55
        assert default_ring_depth() == 9
        assert env_n_shards() == 12

    def test_segment_env_flows_into_kernel_segments(self, monkeypatch):
        monkeypatch.setenv(SEGMENT_ROWS_ENV, "100")
        segs = list(Dot(400).segments())
        assert len(segs) == 8  # 800 rows / (100-row target => 50 iters)

    def test_sharded_engine_cap_lifted(self, monkeypatch):
        monkeypatch.delenv(N_SHARDS_ENV, raising=False)
        eng = ShardedExactEngine(SMALL, n_shards=12)
        assert eng.n_shards == 12  # old hard cap was min(8, cpus)
        monkeypatch.setenv(N_SHARDS_ENV, "10")
        assert ShardedExactEngine(SMALL).n_shards == 10
        monkeypatch.setenv(N_SHARDS_ENV, "junk")
        with pytest.raises(SimulationError, match=N_SHARDS_ENV):
            ShardedExactEngine(SMALL)

    def test_sharded_engine_still_clamped_to_sets(self, monkeypatch):
        cfg = CacheConfig(capacity_bytes=4 * 1024, associativity=16)
        monkeypatch.setenv(N_SHARDS_ENV, "64")
        assert ShardedExactEngine(cfg).n_shards <= cfg.n_sets

    def test_pipelined_engine_rejects_bad_args(self):
        with pytest.raises(SimulationError):
            PipelinedExactEngine(SMALL, n_workers=-1)
        with pytest.raises(SimulationError):
            PipelinedExactEngine(SMALL, segment_rows=0)
        with pytest.raises(SimulationError):
            PipelinedExactEngine(SMALL, ring_depth=0)

    def test_chunk_rows_env_flows_into_exact_engine(self, monkeypatch,
                                                    tmp_path):
        from repro.engine.tracestore import TraceStore

        kernel = Dot(512)
        store = TraceStore(tmp_path / "s", verify="full")
        entry = store.get_or_create(kernel)
        monkeypatch.setenv(CHUNK_ROWS_ENV, "junk")
        with pytest.raises(SimulationError, match=CHUNK_ROWS_ENV):
            ExactEngine(SMALL).run_nest(kernel.streams(), entry)
        monkeypatch.setenv(CHUNK_ROWS_ENV, "100")
        ref = batch_reference(kernel)
        traffic = ExactEngine(SMALL).run_nest(kernel.streams(), entry)
        entry.close()
        assert (traffic.read_bytes, traffic.write_bytes) == ref[:2]


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
class TestPipelineCli:
    def test_pipeline_subcommand_inline(self, capsys):
        from repro.cli import main

        rc = main(["pipeline", "--kernel", "dot", "--size", "2000",
                   "--workers", "0", "--segment-rows", "512",
                   "--compare-sequential", "--shards", "2", "--json"])
        captured = capsys.readouterr()
        assert rc == 0
        import json

        report = json.loads(captured.out)
        assert report["traffic_match"] is True
        assert report["pipeline"]["mode"] == "inline"
        assert report["sequential"]["n_shards"] == 2

    def test_pipeline_subcommand_pool(self, capsys):
        from repro.cli import main

        rc = main(["pipeline", "--kernel", "stream-triad", "--size",
                   "20000", "--workers", "2", "--segment-rows", "4096",
                   "--json"])
        captured = capsys.readouterr()
        assert rc == 0
        import json

        report = json.loads(captured.out)
        assert report["pipeline"]["mode"] == "pool"
        assert report["pipeline"]["n_workers"] == 2
