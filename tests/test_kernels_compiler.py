"""Compiler-flag model (-fprefetch-loop-arrays -> dcbt/dcbtst)."""

from repro.kernels.compiler import (
    NO_EXTRA_FLAGS,
    PREFETCH_LOOP_ARRAYS,
    CompilerConfig,
    compile_kernel,
)


class TestFlags:
    def test_no_flags_no_prefetch(self):
        cfg = compile_kernel(NO_EXTRA_FLAGS)
        assert not cfg.prefetch.dcbt
        assert not cfg.prefetch.dcbtst
        assert not cfg.prefetches_store_targets

    def test_prefetch_flag_enables_both(self):
        cfg = compile_kernel(PREFETCH_LOOP_ARRAYS)
        assert cfg.prefetch.dcbt
        assert cfg.prefetch.dcbtst
        assert cfg.prefetches_store_targets

    def test_flag_among_others(self):
        cfg = compile_kernel("-O3 -fprefetch-loop-arrays -funroll-loops")
        assert cfg.prefetches_store_targets


class TestAssembly:
    def test_plain_body_has_no_prefetch(self):
        body = CompilerConfig().loop_body_assembly()
        assert not any("dcbt" in line for line in body)
        assert any("lxv" in line for line in body)
        assert any("stxv" in line for line in body)

    def test_prefetch_body_matches_listing6(self):
        # Paper Listing 6: dcbt for the load array, dcbtst for the
        # store array, ahead of the copy body.
        body = CompilerConfig(PREFETCH_LOOP_ARRAYS).loop_body_assembly(
            load_array="in", store_array="tmp")
        assert body[0].startswith("dcbt ")
        assert body[1].startswith("dcbtst")
        assert "tmp" in body[1]
