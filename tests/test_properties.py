"""Property-based tests (hypothesis) for core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.analytic import cache_fit_fraction
from repro.machine.cache import CacheSim
from repro.machine.config import CacheConfig
from repro.machine.memory import MemoryController
from repro.machine.prefetch import StreamDetector
from repro.measure.repetition import repetitions_for
from repro.mpi.comm import Cluster, SimComm
from repro.machine.config import SUMMIT
from repro.noise import QUIET
from repro.pcp.pmns import PMNS
from repro.units import round_up, transactions

SMALL_CACHE = CacheConfig(capacity_bytes=16 * 1024, associativity=4)


class TestCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 1 << 16),
                              st.booleans()), min_size=1, maxsize=200)
           if False else
           st.lists(st.tuples(st.integers(0, 1 << 16), st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_traffic_is_granule_aligned_and_nonnegative(self, accesses):
        sim = CacheSim(SMALL_CACHE)
        for addr, is_write in accesses:
            sim.access(addr, 8, is_write)
        sim.flush()
        assert sim.traffic.read_bytes % 64 == 0
        assert sim.traffic.write_bytes % 64 == 0
        assert sim.traffic.read_bytes >= 0

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_read_traffic_bounded_by_footprint_and_accesses(self, addrs):
        sim = CacheSim(SMALL_CACHE)
        for addr in addrs:
            sim.access(addr, 8, is_write=False)
        distinct_granules = len({a // 64 for a in addrs}
                                | {(a + 7) // 64 for a in addrs})
        # At least one fetch per distinct granule touched; at most two
        # fetches per access (an 8 B access can straddle two granules).
        assert sim.traffic.read_bytes >= distinct_granules * 64
        assert sim.traffic.read_bytes <= 2 * len(addrs) * 64

    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_writeback_conservation(self, addrs):
        """Every dirty byte is written back exactly once on flush."""
        sim = CacheSim(SMALL_CACHE)
        for addr in addrs:
            sim.access(addr, 8, is_write=True)
        sim.flush()
        distinct_granules = len({a // 64 for a in addrs} |
                                {(a + 7) // 64 for a in addrs})
        assert sim.traffic.write_bytes == distinct_granules * 64

    @given(st.integers(1, 500), st.integers(8, 512))
    @settings(max_examples=30, deadline=None)
    def test_resident_never_exceeds_capacity(self, count, stride):
        sim = CacheSim(SMALL_CACHE)
        sim.touch_array(0, count, 8, stride, is_write=False)
        assert sim.resident_bytes() <= SMALL_CACHE.capacity_bytes


class TestUnitsProperties:
    @given(st.integers(0, 1 << 40), st.sampled_from([32, 64, 128]))
    def test_round_up_properties(self, n, granule):
        rounded = round_up(n, granule)
        assert rounded >= n
        assert rounded - n < granule
        assert rounded % granule == 0

    @given(st.integers(0, 1 << 30))
    def test_transactions_consistent_with_round_up(self, n):
        assert transactions(n) * 64 == round_up(n)


class TestDetectorProperties:
    @given(st.integers(-(1 << 20), 1 << 20).filter(lambda s: s != 0),
           st.integers(6, 64))
    @settings(max_examples=50)
    def test_any_constant_stride_detected(self, stride, count):
        d = StreamDetector()
        for i in range(count):
            d.observe("s", 1 << 22 + i * 0 if False else (1 << 22) + i * stride)
        assert d.is_detected("s")

    @given(st.lists(st.integers(0, 1 << 16), min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_detection_requires_stability(self, addrs):
        d = StreamDetector()
        for a in addrs:
            d.observe("s", a)
        if d.is_detected("s"):
            # Some window of >= threshold equal strides must exist.
            strides = [b - a for a, b in zip(addrs, addrs[1:])]
            threshold = d.config.detect_threshold
            found = any(
                len(set(strides[i:i + threshold - 1])) == 1
                and strides[i] != 0
                for i in range(len(strides) - threshold + 2)
                if strides[i:i + threshold - 1]
            )
            assert found


class TestMemoryControllerProperties:
    @given(st.lists(st.integers(1, 1 << 20), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_channel_sum_equals_total(self, sizes):
        mc = MemoryController(n_channels=8)
        expected = 0
        for nbytes in sizes:
            mc.record_read(nbytes)
            expected += round_up(nbytes)
        assert mc.total_read_bytes == expected

    @given(st.lists(st.integers(1, 1 << 16), min_size=5, max_size=50))
    @settings(max_examples=50)
    def test_channels_balanced_within_one_transaction_per_record(self, sizes):
        mc = MemoryController(n_channels=8)
        for nbytes in sizes:
            mc.record_read(nbytes)
        counts = [ch.read_bytes for ch in mc.channels]
        assert max(counts) - min(counts) <= 64 * len(sizes)


class TestPMNSProperties:
    @given(st.lists(
        st.lists(st.sampled_from("abcd"), min_size=1, max_size=4)
        .map(lambda parts: ".".join("".join(p) for p in [parts])),
        min_size=1, max_size=20, unique=True))
    @settings(max_examples=30)
    def test_register_then_lookup(self, names):
        tree = PMNS()
        registered = {}
        for i, name in enumerate(names):
            try:
                tree.register(name, i)
                registered[name] = i
            except Exception:
                continue  # prefix conflicts are allowed to fail
        for name, pmid in registered.items():
            assert tree.lookup(name) == pmid
            assert tree.name_of(pmid) == name
        assert sorted(tree.traverse()) == sorted(registered)


class TestRepetitionProperties:
    @given(st.integers(0, 10000))
    def test_eq5_bounds(self, n):
        reps = repetitions_for(n)
        assert 10 <= reps <= 514


class TestAlltoallConservation:
    @given(st.integers(1, 3), st.integers(64, 1 << 16))
    @settings(max_examples=10, deadline=None)
    def test_bytes_sent_equal_bytes_received(self, n_nodes, per_pair):
        cluster = Cluster(SUMMIT, n_nodes=n_nodes, seed=1, noise=QUIET)
        comm = SimComm(cluster)
        comm.alltoall_bytes(per_pair)
        xmit = sum(nic.xmit_octets for node in cluster.nodes
                   for nic in node.nics)
        recv = sum(nic.recv_octets for node in cluster.nodes
                   for nic in node.nics)
        assert xmit == recv
        reads = sum(node.socket(s).memory.total_read_bytes
                    for node in cluster.nodes for s in (0, 1))
        writes = sum(node.socket(s).memory.total_write_bytes
                     for node in cluster.nodes for s in (0, 1))
        assert reads == writes  # every sent byte is received


class TestAnalyticProperties:
    @given(st.integers(1, 1 << 28), st.integers(1, 1 << 28))
    def test_fit_fraction_in_unit_interval(self, ws, cap):
        f = cache_fit_fraction(ws, cap)
        assert 0.0 <= f <= 1.0

    @given(st.integers(1, 1 << 26))
    def test_fit_fraction_monotone_in_working_set(self, cap):
        vals = [cache_fit_fraction(int(cap * f), cap)
                for f in (0.5, 0.9, 1.0, 1.2, 1.5)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
