"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig12" in out

    def test_run_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Summit" in out

    def test_run_with_seed(self, capsys):
        assert main(["table2", "--seed", "7"]) == 0
        assert "nvml" in capsys.readouterr().out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["fig99"])

    def test_parser_program_name(self):
        assert build_parser().prog == "repro-experiments"

    def test_json_output(self, capsys):
        import json

        assert main(["table1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment_id"] == "table1"
        assert data["rows"][0][0] == "Summit"
        assert isinstance(data["headers"], list)
