"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig12" in out

    def test_run_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Summit" in out

    def test_run_with_seed(self, capsys):
        assert main(["table2", "--seed", "7"]) == 0
        assert "nvml" in capsys.readouterr().out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["fig99"])

    def test_parser_program_name(self):
        assert build_parser().prog == "repro-experiments"

    def test_json_output(self, capsys):
        import json

        assert main(["table1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment_id"] == "table1"
        assert data["rows"][0][0] == "Summit"
        assert isinstance(data["headers"], list)


class TestSampleCLI:
    # 4 KiB cache on GEMM N=32: B no longer fits, so miss events are
    # dense and the estimate converges fast even at this tiny scale.
    ARGS = ["--kernel", "gemm", "--size", "32", "--cache-kib", "4",
            "--period", "8", "--json"]

    def test_sample_smoke(self, capsys):
        import json

        assert main(["sample"] + self.ARGS) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel"] == "gemm-32"
        assert data["period"] == 8
        assert data["exact"]["read_bytes"] > 0
        assert data["relative_error"]["total"] < 0.25
        assert data["overhead"]["samples"] > 0
        assert data["hot_lines"]

    def test_sample_listed(self, capsys):
        assert main(["--list"]) == 0
        assert "sample" in capsys.readouterr().out

    def test_sample_dispatches_after_leading_global_flags(self, capsys):
        # The PR-3 regression class: `--seed 42 bench` used to feed
        # the experiment parser. The sample subcommand must dispatch
        # wherever it sits in argv.
        import json

        assert main(["--seed", "42", "sample"] + self.ARGS) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel"] == "gemm-32"
        assert data["seed"] == 42

    def test_sample_max_error_gate(self, capsys):
        assert main(["sample"] + self.ARGS + ["--max-error", "1e-12"]) == 1
        capsys.readouterr()
        assert main(["sample"] + self.ARGS + ["--max-error", "0.9"]) == 0
