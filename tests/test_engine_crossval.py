"""Cross-validation: analytic traffic laws vs the exact cache simulator.

DESIGN.md §6 requires every analytic law to be validated against
ground-truth simulation at small sizes. Tolerances are tight where the
laws are exact (streaming kernels) and looser near cache-capacity
roll-offs (the analytic model smooths what LRU does discretely).
"""

import pytest

from repro.engine.analytic import CacheContext
from repro.engine.exact import ExactEngine
from repro.engine.tracecache import cached_exact_trace
from repro.fft3d.decomp import LocalBlock
from repro.fft3d.resort import S1CFCombined, S1CFLoopNest1, S1CFLoopNest2, S2CF
from repro.kernels.blas import CappedGemv, Dot, Gemm
from repro.machine.config import CacheConfig
from repro.machine.prefetch import SoftwarePrefetch
from repro.units import MIB

BIG = CacheConfig(capacity_bytes=4 * MIB)
BIG_CTX = CacheContext(capacity_bytes=4 * MIB)


def crossval(kernel, cache_cfg=BIG, ctx=BIG_CTX, prefetch=SoftwarePrefetch(),
             rel=0.02):
    # Batch fast path (differentially tested against the scalar oracle
    # in test_engine_batch.py); memoized so repeated configurations of
    # the same kernel shape reuse the trace.
    engine = ExactEngine(cache_cfg)
    exact = engine.run_nest(kernel.streams(), cached_exact_trace(kernel),
                            prefetch=prefetch)
    analytic = kernel.traffic(ctx, prefetch)
    assert analytic.read_bytes == pytest.approx(exact.read_bytes, rel=rel), \
        f"{kernel.name}: analytic reads {analytic.read_bytes} vs exact {exact.read_bytes}"
    assert analytic.write_bytes == pytest.approx(exact.write_bytes, rel=rel), \
        f"{kernel.name}: analytic writes {analytic.write_bytes} vs exact {exact.write_bytes}"
    return exact, analytic


class TestBlasCrossval:
    def test_dot(self):
        crossval(Dot(4096))

    @pytest.mark.parametrize("n", [16, 40, 64])
    def test_gemm_cached(self, n):
        crossval(Gemm(n))

    def test_gemm_large_batch_only(self):
        # N=256 (~100M accesses) is far beyond what the scalar oracle
        # can validate in test time; the vectorized batch engine makes
        # it tractable. Working set (one A row + B + one C row) still
        # fits the 4 MiB cache, so the analytic law stays exact.
        crossval(Gemm(256))

    @pytest.mark.parametrize("m,n,p", [(64, 32, 32), (100, 20, 20),
                                       (48, 48, 48)])
    def test_capped_gemv_cached(self, m, n, p):
        crossval(CappedGemv(m=m, n=n, p=p))

    def test_capped_gemv_thrashing_matrix(self):
        # Cache far smaller than A: every pass re-streams A, matching
        # the paper's capped expectation M*N + M + N.
        cache = CacheConfig(capacity_bytes=64 * 1024)
        ctx = CacheContext(capacity_bytes=64 * 1024)
        kernel = CappedGemv(m=256, n=256, p=64)  # A = 128 KiB > cache
        exact, analytic = crossval(kernel, cache, ctx, rel=0.15)
        expected = kernel.expected_traffic()
        assert exact.read_bytes == pytest.approx(expected.read_bytes,
                                                 rel=0.15)


class TestResortCrossval:
    BLOCK = LocalBlock(planes=8, rows=8, cols=16)

    @pytest.mark.parametrize("cls", [S1CFLoopNest1, S1CFLoopNest2,
                                     S1CFCombined, S2CF])
    def test_plain(self, cls):
        crossval(cls(self.BLOCK))

    @pytest.mark.parametrize("cls", [S1CFLoopNest1, S2CF])
    def test_with_prefetch(self, cls):
        crossval(cls(self.BLOCK),
                 prefetch=SoftwarePrefetch(dcbt=True, dcbtst=True))

    def test_ln2_thrashing_reaches_five_reads_per_write(self):
        # Past Eq. 7's boundary: 4 granule-reads for tmp + 1 RFO for out.
        block = LocalBlock(planes=16, rows=16, cols=16)
        cache = CacheConfig(capacity_bytes=8 * 1024, associativity=4)
        ctx = CacheContext(capacity_bytes=8 * 1024)
        kernel = S1CFLoopNest2(block)
        engine = ExactEngine(cache)
        exact = engine.run_nest(kernel.streams(), cached_exact_trace(kernel))
        analytic = kernel.traffic(ctx)
        exact_ratio = exact.read_bytes / exact.write_bytes
        analytic_ratio = analytic.read_bytes / analytic.write_bytes
        assert exact_ratio == pytest.approx(5.0, rel=0.1)
        assert analytic_ratio == pytest.approx(exact_ratio, rel=0.1)
