#!/usr/bin/env python
"""Micro-architecture story of §IV: cache-bypassing stores, strided
amplification, and what one GCC flag does about it (Figs 6-9).

Runs the four S1CF/S2CF variants at a stable size on a simulated
Summit socket, with and without ``-fprefetch-loop-arrays``, and prints
reads/writes *per element* so the mechanisms are visible at a glance:

=====================  ==========  =======================
kernel                 no flags    -fprefetch-loop-arrays
=====================  ==========  =======================
s1cf loop nest 1       1 R : 1 W   2 R : 1 W  (dcbtst)
s1cf loop nest 2       2..5 R : 1W (faster with dcbt)
s1cf combined          2 R : 1 W
s2cf                   1 R : 1 W   2 R : 1 W
=====================  ==========  =======================

Also prints the assembly the compiler model injects (paper Listing 6).

Run:  python examples/prefetch_and_store_bypass.py
"""

from repro.fft3d import LocalBlock, S1CFCombined, S1CFLoopNest1, \
    S1CFLoopNest2, S2CF
from repro.kernels import PREFETCH_LOOP_ARRAYS, compile_kernel
from repro.measure import MeasurementSession, format_table, s1cf_ln2_boundary


def measure(session, kernel, flags):
    result = session.measure_kernel(
        kernel, n_cores=1, compiler=compile_kernel(flags),
        assume_socket_busy=True)
    e = kernel.nbytes
    bw = (result.measured.total_bytes / result.runtime_per_rep) / 1e9
    return (round(result.measured.read_bytes / e, 2),
            round(result.measured.write_bytes / e, 2),
            round(bw, 1))


def main():
    print("Assembly injected by -fprefetch-loop-arrays (Listing 6):")
    for line in compile_kernel(PREFETCH_LOOP_ARRAYS).loop_body_assembly():
        print(f"    {line}")
    print()

    session = MeasurementSession("summit", via="pcp", seed=11)
    n = 1024  # past Eq. 7's boundary
    block = LocalBlock(planes=n // 2, rows=n // 4, cols=n)
    print(f"N = {n} on a 2x4 grid -> local block "
          f"{block.planes}x{block.rows}x{block.cols}; "
          f"Eq. 7 boundary N ~ {s1cf_ln2_boundary():.0f}\n")

    rows = []
    for cls in (S1CFLoopNest1, S1CFLoopNest2, S1CFCombined, S2CF):
        kernel = cls(block)
        plain = measure(session, kernel, "")
        flagged = measure(session, kernel, PREFETCH_LOOP_ARRAYS)
        rows.append([kernel.routine,
                     f"{plain[0]}R : {plain[1]}W", plain[2],
                     f"{flagged[0]}R : {flagged[1]}W", flagged[2]])
    print(format_table(
        ["kernel", "traffic/elem (plain)", "GB/s",
         "traffic/elem (-fprefetch-loop-arrays)", "GB/s"],
        rows,
        title="Reads/writes per 16 B element copied (measured via PCP)"))
    print("\nMechanisms: sequential dense stores bypass the cache (no "
          "read-per-write);\na strided stream on the core — or dcbtst "
          "prefetch — forces write-allocation;\npast Eq. 7 each strided "
          "16 B read costs a whole 64 B granule (x4).")


if __name__ == "__main__":
    main()
