#!/usr/bin/env python
"""Fig 12: multi-component profile of one rank of the QMC miniapp.

Runs the QMCPACK-style example problem — VMC with no drift, VMC with
drift, then DMC — with *real* Monte Carlo samplers on an exactly
solvable system (3-D harmonic oscillator), while the profiler samples
nest memory traffic, GPU power and InfiniBand counters together. Each
stage is distinguishable: rising GPU power plateaus, growing traffic,
and DMC-only walker-exchange network activity. The script also prints
the physics so you can check the simulation is a real QMC code: block
energies approach the exact ground state E0 = 1.5.

Run:  python examples/qmcpack_profile.py
"""

import numpy as np

from repro.measure import MultiComponentProfiler, sparkline
from repro.papi import library_init
from repro.pcp import start_pmcd_for_node
from repro.qmc import QMCPACKApp


def main() -> None:
    app = QMCPACKApp(n_nodes=2, seed=17)
    node0 = app.cluster.nodes[0]
    papi = library_init(node0, pmcd=start_pmcd_for_node(node0))
    profiler = MultiComponentProfiler(papi, socket_id=0)
    timeline = profiler.profile(app.steps())

    print("QMCPACK example problem — rank 0 profile")
    print(f"{'phase':12s} {'t[ms]':>9s} {'dt[ms]':>8s} "
          f"{'read GB/s':>10s} {'write GB/s':>11s} {'GPU W':>7s} "
          f"{'net MB/s':>9s}")
    for s in timeline.samples:
        print(f"{s.label:12s} {s.t_start * 1e3:9.1f} "
              f"{s.duration * 1e3:8.1f} {s.mem_read_rate / 1e9:10.2f} "
              f"{s.mem_write_rate / 1e9:11.2f} {s.gpu_power_w:7.1f} "
              f"{s.net_recv_rate / 1e6:9.2f}")

    print("\nTime series:")
    print(f"  GPU power |{sparkline(timeline.series('gpu_power_w'))}|")
    print(f"  mem read  |{sparkline(timeline.series('mem_read_rate'))}|")
    print(f"  IB recv   |{sparkline(timeline.series('net_recv_rate'))}|")

    print("\nPhysics (exact ground-state energy = "
          f"{app.psi.exact_energy}):")
    for phase in ("vmc-nodrift", "vmc-drift", "dmc"):
        blocks = app.results[phase]
        energies = [b.energy for b in blocks]
        print(f"  {phase:12s} <E> = {np.mean(energies):+.4f} "
              f"+- {np.std(energies) / len(energies) ** 0.5:.4f}   "
              f"acceptance = {np.mean([b.acceptance for b in blocks]):.2f}")
    pops = [b.population for b in app.results["dmc"]]
    print(f"  DMC population: {min(pops)}..{max(pops)} "
          f"(target {app.sample_walkers}; branching + feedback control)")


if __name__ == "__main__":
    main()
