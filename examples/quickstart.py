#!/usr/bin/env python
"""Quickstart: measure memory traffic through the PAPI PCP component.

Walks the exact path a Summit user walks in the paper:

1. stand up a simulated Summit node (unprivileged user) and its PMCD
   daemon (privileged, exports the nest counters);
2. initialise PAPI and inspect the available components — note that
   ``perf_event_uncore`` exists but is *unavailable* without elevated
   privileges, which is precisely why the PCP component matters;
3. build an event set of the 16 nest memory events of socket 0;
4. run a GEMM on the simulated socket and read the counters;
5. compare measured bytes against the paper's expectation (3N² element
   reads, N² element writes).

Run:  python examples/quickstart.py
"""

from repro.errors import PapiPermissionDenied
from repro.kernels import Gemm
from repro.machine import SUMMIT, Node
from repro.measure import MeasurementSession, repetitions_for
from repro.papi import library_init
from repro.pcp import start_pmcd_for_node
from repro.units import fmt_bytes


def show_components() -> None:
    node = Node(SUMMIT, seed=42)
    papi = library_init(node, pmcd=start_pmcd_for_node(node))
    print("PAPI components on the simulated Summit node:")
    for name, info in papi.component_report().items():
        status = "available" if info["available"] == "yes" else \
            f"UNAVAILABLE ({info['reason']})"
        print(f"  {name:18s} {info['num_events']:>3s} events  {status}")
    print()
    # Direct uncore access is denied for the unprivileged user:
    es = papi.create_eventset()
    try:
        es.add_event("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0")
    except PapiPermissionDenied as exc:
        print(f"direct perf_uncore access: DENIED — {exc}")
    print()


def measure_gemm(n: int = 512) -> None:
    session = MeasurementSession("summit", via="pcp", seed=42)
    reps = repetitions_for(n)
    result = session.measure_kernel(Gemm(n), n_cores=1, repetitions=reps)
    expected = result.expected
    print(f"GEMM N={n}, single thread, {reps} repetitions (Eq. 5), "
          f"measured via pcp::: events")
    print(f"  measured  reads {fmt_bytes(result.measured.read_bytes):>12s}"
          f"   writes {fmt_bytes(result.measured.write_bytes):>12s}")
    print(f"  expected  reads {fmt_bytes(expected.read_bytes):>12s}"
          f"   writes {fmt_bytes(expected.write_bytes):>12s}")
    print(f"  ratios    reads {result.read_ratio:12.3f}"
          f"   writes {result.write_ratio:12.3f}")
    print()
    batched = session.measure_kernel(
        Gemm(n), n_cores=session.batch_core_count(), repetitions=reps)
    print(f"Batched GEMM (one per core, {batched.n_cores} cores):")
    print(f"  ratios    reads {batched.read_ratio:12.3f}"
          f"   writes {batched.write_ratio:12.3f}"
          "   <- batching matches expectations")


if __name__ == "__main__":
    show_components()
    measure_gemm()
