#!/usr/bin/env python
"""Measured roofline: SpMV vs GEMM, entirely through PAPI counters.

The paper's lineage (ref. [9]) is about measuring arithmetic intensity
"effortlessly" with validated counters. This example does the full
workflow on the simulated Summit node:

* FLOPs from the unprivileged ``perf_event`` core component
  (``PAPI_FP_OPS`` preset),
* memory bytes from the privileged nest counters via the PCP component
  (``PAPI_MEM_BYTES`` preset),
* intensity = FLOPs/bytes, placed against the socket roofline,

for three kernels with very different intensities: a CSR SpMV over a
3-D Laplacian (heavily memory-bound), a STREAM triad, and a cached
GEMM (compute-bound). It also runs the CG solver so the SpMV numerics
are exercised by a real algorithm.

Run:  python examples/roofline_spmv_vs_gemm.py
"""

import numpy as np

from repro.engine.executor import Executor
from repro.kernels import (
    Gemm,
    SpmvKernel,
    StreamKernel,
    conjugate_gradient,
    laplacian_3d,
)
from repro.machine import SUMMIT, Node
from repro.measure.derived import DerivedMetrics
from repro.papi import library_init
from repro.papi.presets import PresetEventSet
from repro.pcp import start_pmcd_for_node


def measure_kernel(node, papi, kernel):
    pes = PresetEventSet(papi, ["PAPI_FP_OPS", "PAPI_MEM_BYTES"])
    pes.start()
    record = Executor(node).run(kernel, n_cores=21, noisy=False)
    values = pes.stop()
    return DerivedMetrics(
        bytes_moved=values["PAPI_MEM_BYTES"],
        flops=values["PAPI_FP_OPS"],
        seconds=record.runtime_per_rep,
    )


def main() -> None:
    from repro.noise import QUIET

    node = Node(SUMMIT, seed=19, noise=QUIET)
    papi = library_init(node, pmcd=start_pmcd_for_node(node))

    # A real solve first, so the SpMV numerics earn their keep.
    mat = laplacian_3d(8, 8, 8)
    rng = np.random.default_rng(1)
    b = rng.standard_normal(mat.n_rows)
    result = conjugate_gradient(mat, b, tol=1e-10)
    residual = np.linalg.norm(mat.matvec(result.x) - b)
    print(f"CG on a 3-D Laplacian ({mat.n_rows} unknowns, "
          f"nnz={mat.nnz}): converged in {result.iterations} iterations, "
          f"|Ax-b| = {residual:.2e}\n")

    kernels = [
        SpmvKernel(laplacian_3d(24, 24, 24)),
        StreamKernel("triad", 1 << 20),
        Gemm(512),
    ]
    ridge = DerivedMetrics.ridge_intensity(SUMMIT, n_cores=21)
    print(f"Socket roofline ridge: {ridge:.3f} FLOP/byte "
          f"({21 * SUMMIT.socket.core_flops / 1e9:.0f} GF/s socket, "
          f"{SUMMIT.socket.memory_bandwidth / 1e9:.0f} GB/s)\n")
    print(f"{'kernel':28s} {'FLOP/byte':>10s} {'bound':>8s} "
          f"{'GB/s':>7s} {'GF/s':>7s} {'roofline %':>11s}")
    for kernel in kernels:
        m = measure_kernel(node, papi, kernel)
        bound = m.roofline_bound(SUMMIT, n_cores=21)
        print(f"{kernel.name:28s} {m.arithmetic_intensity:10.3f} "
              f"{bound:>8s} {m.bandwidth / 1e9:7.1f} "
              f"{m.flop_rate / 1e9:7.2f} "
              f"{m.efficiency(SUMMIT, n_cores=21) * 100:10.1f}%")
    print("\nAll quantities came from PAPI counters: FLOPs from the "
          "core component\n(no privilege needed), bytes from the nest "
          "via PCP (the paper's path).")


if __name__ == "__main__":
    main()
