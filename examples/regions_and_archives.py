#!/usr/bin/env python
"""Tool-style instrumentation: PAPI high-level regions + pmlogger.

Two workflows the paper's ecosystem builds on top of PAPI/PCP:

1. **Region instrumentation** (what TAU/Score-P/Caliper do): wrap the
   phases of a 3D-FFT rank in ``PAPI_hl_region``-style regions and get
   per-region memory-traffic totals without touching event sets.
2. **Archive logging** (what pmlogger does on Summit): sample the PCP
   nest metrics on an interval while an application runs, then replay
   the archive as bandwidth curves.

Run:  python examples/regions_and_archives.py
"""

from repro.fft3d import FFT3DApp
from repro.measure import sparkline
from repro.mpi import ProcessorGrid
from repro.papi import HighLevelApi, library_init
from repro.pcp import PmapiContext, PmLogger, start_pmcd_for_node
from repro.pmu.events import all_pcp_events, pcp_metric_name
from repro.units import fmt_bytes


def region_demo():
    app = FFT3DApp(n=512, grid=ProcessorGrid(2, 4), use_gpu=True, seed=23)
    node0 = app.cluster.nodes[0]
    papi = library_init(node0, pmcd=start_pmcd_for_node(node0))
    hl = HighLevelApi(papi, events=all_pcp_events(node0.config, 0))

    for step in app.steps(slices_per_phase=1):
        hl.region_begin(step.label)
        step.run()
        hl.region_end(step.label)
    hl.stop()

    print("Per-region report (PAPI high-level API, one 3D-FFT rank):")
    print(f"  {'region':10s} {'inst':>4s} {'seconds':>9s} "
          f"{'read':>12s} {'write':>12s}")
    for name, entry in hl.report().items():
        reads = sum(v for k, v in entry.items() if "READ" in k)
        writes = sum(v for k, v in entry.items() if "WRITE" in k)
        print(f"  {name:10s} {int(entry['instances']):4d} "
              f"{entry['seconds']:9.4f} {fmt_bytes(reads):>12s} "
              f"{fmt_bytes(writes):>12s}")
    print()


def pmlogger_demo():
    app = FFT3DApp(n=512, grid=ProcessorGrid(2, 4), use_gpu=True, seed=23)
    node0 = app.cluster.nodes[0]
    pmcd = start_pmcd_for_node(node0, round_trip_seconds=0.0)
    metrics = [pcp_metric_name(ch, write=False) for ch in range(8)]
    logger = PmLogger(PmapiContext(pmcd, node=node0), metrics,
                      interval_seconds=1e-3)

    steps = app.steps(slices_per_phase=2)
    logger.sample()
    for step in steps:
        step.run()
        logger.sample()

    # Aggregate the 8 per-channel read counters into one bandwidth curve.
    curves = [logger.rates(m, "cpu87") for m in metrics]
    bandwidth = [sum(c[i][1] for c in curves) for i in range(len(curves[0]))]
    print(f"pmlogger archive: {len(logger)} samples of 8 channel counters")
    print(f"  socket read bandwidth |{sparkline(bandwidth)}|")
    print(f"  peak {max(bandwidth) / 1e9:.1f} GB/s, "
          f"mean {sum(bandwidth) / len(bandwidth) / 1e9:.1f} GB/s")


if __name__ == "__main__":
    region_demo()
    pmlogger_demo()
