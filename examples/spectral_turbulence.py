#!/usr/bin/env python
"""A GESTS/HACC-style spectral solver step on the distributed 3D-FFT.

The paper motivates the 3D-FFT as "a workhorse kernel utilized by
various applications, such as HACC, GESTS, and QMCPACK". This example
plays the downstream-user role: one pseudo-spectral smoothing step of
a turbulence-like field using the *verified* distributed transform —

    u ← F⁻¹[ exp(−ν k² Δt) · F[u] ]

entirely on per-rank blocks (forward pipeline, spectral multiply,
backward pipeline), checked against the equivalent single-node NumPy
computation; followed by the same step's hardware profile on the
simulated cluster (memory traffic + GPU power + network), which is the
measurement workflow the paper builds for exactly such applications.

Run:  python examples/spectral_turbulence.py
"""

import numpy as np

from repro.fft3d import Distributed3DFFT, FFT3DApp, gather, scatter
from repro.measure import MultiComponentProfiler
from repro.mpi import ProcessorGrid
from repro.papi import library_init
from repro.pcp import start_pmcd_for_node


def spectral_step_distributed(u, grid, nu_dt=0.02):
    """One diffusion step computed block-distributed."""
    n = u.shape[0]
    fft = Distributed3DFFT(n, grid)
    blocks = fft.forward_blocks(scatter(u, grid))
    # Spectral multiply: each rank filters only its own (x-full,
    # y-slab, z-slab) portion of k-space.
    k = np.fft.fftfreq(n) * n
    p, r = fft.block.planes, fft.block.rows
    for rank, block in enumerate(blocks):
        row, col = grid.coords_of(rank)
        kx = k[:, None, None]
        ky = k[row * p:(row + 1) * p][None, :, None]
        kz = k[col * r:(col + 1) * r][None, None, :]
        block *= np.exp(-nu_dt * (kx ** 2 + ky ** 2 + kz ** 2))
    return gather(fft.backward_blocks(blocks), grid).real


def verify_numerics(n=32, seed=3):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((n, n, n))
    grid = ProcessorGrid(2, 4)
    distributed = spectral_step_distributed(u, grid)
    # Single-node reference.
    k = np.fft.fftfreq(n) * n
    k2 = (k[:, None, None] ** 2 + k[None, :, None] ** 2
          + k[None, None, :] ** 2)
    reference = np.fft.ifftn(np.exp(-0.02 * k2) * np.fft.fftn(u)).real
    err = np.abs(distributed - reference).max()
    energy_before = np.sum(u ** 2)
    energy_after = np.sum(distributed ** 2)
    print(f"Distributed spectral step on N={n}^3, 2x4 grid:")
    print(f"  max |distributed - single-node| = {err:.2e}")
    print(f"  field energy {energy_before:.1f} -> {energy_after:.1f} "
          "(diffusion dissipates, as it must)")
    assert err < 1e-10
    assert energy_after < energy_before
    print()


def profile_step(n=1024):
    """Hardware profile of the FFT halves of the same step at scale."""
    app = FFT3DApp(n=n, grid=ProcessorGrid(8, 8), use_gpu=True, seed=29)
    node0 = app.cluster.nodes[0]
    papi = library_init(node0, pmcd=start_pmcd_for_node(node0))
    timeline = MultiComponentProfiler(papi).profile(
        app.steps(slices_per_phase=2))
    print(f"Hardware profile of the forward transform (N={n}, 64 ranks):")
    for phase, agg in timeline.phase_totals().items():
        ratio = (agg["read_bytes"] / agg["write_bytes"]
                 if agg["write_bytes"] else float("inf"))
        print(f"  {phase:10s} {agg['seconds'] * 1e3:7.1f} ms  "
              f"r/w={ratio:5.2f}  net={agg['net_recv_bytes'] / 1e6:7.1f} MB")


if __name__ == "__main__":
    verify_numerics()
    profile_step()
