#!/usr/bin/env python
"""The paper's core methodology story (Figs 2-4) in one script.

Sweeps GEMM problem sizes three ways on the simulated machines:

* one repetition, single thread  -> noise-dominated small sizes;
* adaptive repetitions (Eq. 5)   -> clean small sizes, but gradual
  divergence at large N (a lone core re-appropriates idle L3 slices,
  and remote-slice spill costs extra memory traffic);
* batched (one GEMM per core)    -> expectations hold exactly until
  each core's 5 MB share is exceeded, then traffic jumps drastically;

and shows the PCP path (Summit) agrees with the direct perf_uncore
path (Tellico) — the paper's accuracy claim.

Run:  python examples/gemm_noise_and_repetitions.py
"""

from repro.kernels import Gemm
from repro.measure import (
    MeasurementSession,
    format_table,
    gemm_divergence_band,
    repetitions_for,
)
from repro.units import MIB

SIZES = (64, 128, 256, 512, 720, 1024, 1448, 2048)


def sweep(session, batched, adaptive):
    rows = []
    cores = session.batch_core_count() if batched else 1
    for n in SIZES:
        reps = repetitions_for(n) if adaptive else 1
        r = session.measure_kernel(Gemm(n), n_cores=cores, repetitions=reps)
        rows.append([n, cores, reps, round(r.read_ratio, 3),
                     round(r.write_ratio, 3)])
    return rows


def main():
    band = gemm_divergence_band(5 * MIB)
    print(f"Expected divergence band (Eqs. 3-4): "
          f"N in [{band.lower:.0f}, {band.upper:.0f}]\n")
    summit = MeasurementSession("summit", via="pcp", seed=7)
    tellico = MeasurementSession("tellico", via="perf_event_uncore", seed=7)

    headers = ["N", "cores", "reps", "read ratio", "write ratio"]
    print(format_table(headers, sweep(summit, False, False),
                       title="(Fig 2a) Summit/PCP — 1 repetition, 1 thread"))
    print()
    print(format_table(headers, sweep(summit, False, True),
                       title="(Fig 3a) Summit/PCP — Eq. 5 repetitions, "
                             "1 thread"))
    print()
    print(format_table(headers, sweep(summit, True, True),
                       title="(Fig 3b) Summit/PCP — batched "
                             "(per-core 5 MB shares)"))
    print()
    print(format_table(headers, sweep(tellico, True, True),
                       title="(Fig 4b) Tellico/perf_uncore — batched "
                             "(no PCP in the loop)"))
    print("\nTakeaway: ratios behave identically through PCP and direct "
          "counters;\nrepetitions amortise noise; batching pins each core "
          "to its slice.")


if __name__ == "__main__":
    main()
