#!/usr/bin/env python
"""Fig 11: multi-component profile of one rank of the GPU 3D-FFT.

Runs the distributed 3D-FFT mini-app (8x8 virtual processor grid, 32
simulated Summit nodes, cuFFT-offloaded 1D FFT batches) while a
:class:`MultiComponentProfiler` samples three PAPI components at once:

* ``pcp:::...PM_MBA*_{READ,WRITE}_BYTES`` — host memory traffic,
* ``nvml:::...:power``                    — GPU board power,
* ``infiniband:::...:port_recv_data``     — network receive traffic.

The printed timeline shows each phase's unique signature: H2D read
burst -> GPU power spike -> D2H write burst for the FFT phases, 2:1
read:write resorts, 1:1 resorts at higher bandwidth, and network jumps
during the All2Alls.

Run:  python examples/fft3d_profile.py [N]
"""

import sys

from repro.fft3d import FFT3DApp
from repro.measure import MultiComponentProfiler, sparkline
from repro.mpi import ProcessorGrid
from repro.papi import library_init
from repro.pcp import start_pmcd_for_node


def main(n: int = 2016) -> None:
    app = FFT3DApp(n=n, grid=ProcessorGrid(8, 8), use_gpu=True, seed=13)
    node0 = app.cluster.nodes[0]
    papi = library_init(node0, pmcd=start_pmcd_for_node(node0))
    profiler = MultiComponentProfiler(papi, socket_id=0)
    timeline = profiler.profile(app.steps(slices_per_phase=3))

    print(f"3D-FFT N={n}, 8x8 grid (64 ranks on 32 nodes) — rank 0 profile")
    print(f"{'phase':10s} {'t[ms]':>9s} {'dt[ms]':>8s} "
          f"{'read GB/s':>10s} {'write GB/s':>11s} {'GPU W':>7s} "
          f"{'net GB/s':>9s} {'CPU W':>7s}")
    for s in timeline.samples:
        print(f"{s.label:10s} {s.t_start * 1e3:9.2f} "
              f"{s.duration * 1e3:8.2f} {s.mem_read_rate / 1e9:10.2f} "
              f"{s.mem_write_rate / 1e9:11.2f} {s.gpu_power_w:7.1f} "
              f"{s.net_recv_rate / 1e9:9.2f} {s.cpu_power_w:7.1f}")

    print("\nTime series (left to right = execution order):")
    print(f"  mem read  |{sparkline(timeline.series('mem_read_rate'))}|")
    print(f"  mem write |{sparkline(timeline.series('mem_write_rate'))}|")
    print(f"  GPU power |{sparkline(timeline.series('gpu_power_w'))}|")
    print(f"  IB recv   |{sparkline(timeline.series('net_recv_rate'))}|")

    print("\nPer-phase totals:")
    for phase, agg in timeline.phase_totals().items():
        ratio = (agg["read_bytes"] / agg["write_bytes"]
                 if agg["write_bytes"] else float("inf"))
        print(f"  {phase:10s} r/w={ratio:5.2f}  "
              f"net={agg['net_recv_bytes'] / 1e6:8.1f} MB  "
              f"gpu avg={agg['gpu_energy_j'] / agg['seconds']:6.1f} W")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2016)
