#!/usr/bin/env python
"""Validate nest memory-traffic events with the Counter Analysis Toolkit.

"One of PAPI's commitments as a portability layer is the thorough
validation of the hardware events exposed to the user to account for
unreliable counters." This example runs known-traffic probes — the
four STREAM kernels, a DOT, and a cache-resident GEMM — through the
PCP measurement path on the simulated Summit node and classifies every
``PM_MBA*_{READ,WRITE}_BYTES`` event, then repeats the exercise on a
deliberately *broken* counter to show the toolkit catching it.

Run:  python examples/counter_validation.py
"""

from repro.cat import Classification, CounterAnalysisToolkit
from repro.measure import MeasurementSession
from repro.noise import QUIET


def validate(title, session):
    cat = CounterAnalysisToolkit(session)
    report = cat.run_suite()
    print(f"== {title} ==")
    print(report.render())
    counts = {c.value: len(report.events(c)) for c in Classification}
    print(f"summary: {counts}\n")
    return cat, report


def main():
    validate("Quiesced system (noise disabled)",
             MeasurementSession("summit", seed=5, noise=QUIET))
    validate("Production-like system (background daemons, jitter)",
             MeasurementSession("summit", seed=5))

    # Break one counter on purpose: scale channel 5's write counter 7x
    # (a mis-programmed event identity) and watch the toolkit flag it.
    session = MeasurementSession("summit", seed=5, noise=QUIET)
    cat = CounterAnalysisToolkit(session)
    honest = cat._measure_per_event

    def corrupted(probe, events, socket_id, reps):
        values = honest(probe, events, socket_id, reps)
        bad = [e for e in events if "MBA5_WRITE" in e][0]
        values[bad] *= 7
        return values

    cat._measure_per_event = corrupted
    report = cat.run_suite()
    print("== Same system with a mis-programmed MBA5 write counter ==")
    for event in report.events(Classification.UNRELIABLE):
        worst = max((r for r in report.results if r.event == event),
                    key=lambda r: r.relative_error)
        print(f"UNRELIABLE: {event}")
        print(f"  worst probe {worst.probe}: measured {worst.measured} "
              f"vs expected {worst.expected:.0f} "
              f"({worst.relative_error * 100:.0f}% off)")


if __name__ == "__main__":
    main()
