#!/usr/bin/env python
"""Model *your own* kernel's memory traffic with the loop-nest DSL.

The paper derives expected traffic for its kernels by hand (strides,
store bypass, Eq. 7 working sets). The :class:`~repro.engine.LoopNest`
DSL automates that derivation for any affine loop nest, so a developer
can predict what the nest counters *should* show before measuring —
and then measure it through the PAPI PCP component on the simulated
machine to confirm.

This example models a 2-D five-point Jacobi stencil sweep

    out[i][j] = 0.25*(a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1])

predicts its traffic, validates the prediction against the exact cache
simulator, and measures it end-to-end via PCP.

Run:  python examples/custom_kernel_dsl.py
"""

from repro.engine import AffineAccess, CacheContext, ExactEngine, LoopNest
from repro.machine.config import CacheConfig
from repro.measure import MeasurementSession
from repro.units import MIB, fmt_bytes


def jacobi(n: int) -> LoopNest:
    """Five-point stencil over an (n+2) x (n+2) grid, interior sweep."""
    w = n + 2  # padded row width
    return LoopNest(
        name=f"jacobi-{n}",
        bounds=(n, n),  # i, j over the interior
        accesses=[
            AffineAccess("a", (w, 1), offset=1),          # a[i-1+1][j+1-1]...
            AffineAccess("a", (w, 1), offset=2 * w + 1),  # a[i+1][j]
            AffineAccess("a", (w, 1), offset=w),          # a[i][j-1]
            AffineAccess("a", (w, 1), offset=w + 2),      # a[i][j+1]
            AffineAccess("out", (w, 1), offset=w + 1, is_write=True),
        ],
        flops_per_iteration=4.0,
    )


def main() -> None:
    # ---- 1. predict -------------------------------------------------
    n = 512
    nest = jacobi(n)
    ctx = CacheContext(capacity_bytes=5 * MIB)
    law = nest.traffic(ctx)
    print(f"Five-point Jacobi, {n}x{n} interior:")
    print(f"  DSL-predicted traffic: read {fmt_bytes(law.read_bytes)}, "
          f"write {fmt_bytes(law.write_bytes)}")
    per_elem = law.read_bytes / (n * n * 8)
    print(f"  = {per_elem:.2f} reads per element (neighbouring rows are "
          "reused from cache; 'a' streams once)")

    # ---- 2. validate against the exact cache simulator --------------
    small = jacobi(96)
    engine = ExactEngine(CacheConfig(capacity_bytes=MIB))
    exact = engine.run_nest(small.streams(), small.exact_accesses())
    predicted = small.traffic(CacheContext(capacity_bytes=MIB))
    err = abs(predicted.read_bytes - exact.read_bytes) / exact.read_bytes
    print(f"\nGround-truth check at 96x96: exact "
          f"{fmt_bytes(exact.read_bytes)} read vs predicted "
          f"{fmt_bytes(predicted.read_bytes)} ({err * 100:.1f}% off)")

    # ---- 3. measure end to end through PAPI/PCP ---------------------
    session = MeasurementSession("summit", via="pcp", seed=31)
    result = session.measure_kernel(nest, n_cores=1, repetitions=50,
                                    assume_socket_busy=True)
    print(f"\nMeasured via pcp::: nest events (50 repetitions):")
    print(f"  read {fmt_bytes(result.measured.read_bytes)}  "
          f"write {fmt_bytes(result.measured.write_bytes)}")
    print(f"  measured/predicted reads = "
          f"{result.measured.read_bytes / law.read_bytes:.3f}")


if __name__ == "__main__":
    main()
