"""Async PMCD fabric: sustained fetch throughput and archive replay.

The fabric redesign only earns its keep if (a) a short pcp-load burst
clears a conservative fetch-rate floor with coalescing visibly
active, (b) the same burst stays healthy under the full fault menu
(shard kill, slow PMDA, dropped connections), and (c) replaying a
pmlogger archive through the daemon is byte-identical to the live
sampling loop and clears a replay-rate floor. Raw timings drift with
machine load, so only one-sided ``_gap`` shortfalls and exactness
``_dev`` metrics are gated; rates land in the logged table.
"""

import shutil
import tempfile
import time

from repro.bench import benchmark
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.measure import format_table
from repro.noise import QUIET
from repro.pcp import connect
from repro.pcp.archive import MetricArchive
from repro.pcp.load import healthy, run_load
from repro.pcp.pmcd import start_pmcd_for_node
from repro.pmu.events import pcp_metric_name

METRICS = [pcp_metric_name(ch, write) for ch in range(2)
           for write in (False, True)]

#: Conservative floors — the dev box sustains ~11k coalesced
#: fetches/s at 256 contexts and replays archives at >50k records/s
#: in-process; the floors leave wide headroom for loaded CI boxes.
CLEAN_RATE_FLOOR = 1200.0
FAULTED_RATE_FLOOR = 400.0
REPLAY_RATE_FLOOR = 2000.0

REPLAY_SAMPLES = 200


def _gap(required: float, got: float) -> float:
    """One-sided shortfall: 0 while ``got`` clears ``required``."""
    return max(0.0, (required - got) / required)


def _health_dev(report) -> float:
    return 0.0 if healthy(report) else 1.0


@benchmark("pcp-fabric", tags=("pcp", "fabric", "perf"))
def bench_pcp_fabric(ctx):
    clean = run_load(n_contexts=64, duration_seconds=1.0,
                     seed=ctx.seed % 1000)
    faulted = run_load(n_contexts=32, duration_seconds=0.8,
                       seed=ctx.seed % 1000, shard_kills=1,
                       slow_pmda=1, slow_pmda_seconds=0.005,
                       drop_connections=2)

    node = Node(SUMMIT, seed=ctx.seed % 1000, noise=QUIET)
    pmcd = start_pmcd_for_node(node, round_trip_seconds=0.0)
    session = connect(pmcd, node=node)
    root = tempfile.mkdtemp(prefix="repro-bench-fabric-")
    try:
        store = MetricArchive.create(root + "/arch")
        logger = session.log(METRICS, interval_seconds=0.5, store=store)
        logger.run(REPLAY_SAMPLES)
        pmcd.attach_archive(store)

        t_replay = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            replay = session.fetch_archive(METRICS)
            t_replay = min(t_replay, time.perf_counter() - t0)
        replay_dev = float(replay != logger.archive)
        replay_rate = len(replay) / t_replay
    finally:
        shutil.rmtree(root, ignore_errors=True)

    ctx.log(format_table(
        ["scenario", "fetches/s", "p99 usec", "coalesced", "faults"],
        [["clean (64 ctx)", round(clean["fetches_per_second"], 1),
          clean["latency_p99_usec"], clean["coalesced"], 0],
         ["faulted (32 ctx)", round(faulted["fetches_per_second"], 1),
          faulted["latency_p99_usec"], faulted["coalesced"],
          faulted["faults_injected"]],
         ["archive replay", round(replay_rate, 1), "-",
          "-", "-"]],
        title=f"[pcp-fabric] async fetch load + {REPLAY_SAMPLES}-sample "
              "archive replay"))

    return {
        "clean_rate_gap": _gap(CLEAN_RATE_FLOOR,
                               clean["fetches_per_second"]),
        "faulted_rate_gap": _gap(FAULTED_RATE_FLOOR,
                                 faulted["fetches_per_second"]),
        "replay_rate_gap": _gap(REPLAY_RATE_FLOOR, replay_rate),
        # Exactness and health: replay must be byte-identical to the
        # live sampling loop; every fault must be absorbed.
        "replay_dev": replay_dev,
        "replay_records": float(len(replay)),
        "clean_health_dev": _health_dev(clean),
        "faulted_health_dev": _health_dev(faulted),
        "coalesce_dev": float(clean["coalesced"] == 0),
        "restart_dev": float(faulted["shard_restarts"] < 1),
    }


def test_pcp_fabric(run_bench):
    _, metrics = run_bench(bench_pcp_fabric)
    assert metrics["replay_dev"] == 0.0
    assert metrics["replay_records"] == REPLAY_SAMPLES
    assert metrics["clean_health_dev"] == 0.0
    assert metrics["faulted_health_dev"] == 0.0
    assert metrics["coalesce_dev"] == 0.0
    assert metrics["restart_dev"] == 0.0
    assert metrics["clean_rate_gap"] == 0.0
    assert metrics["faulted_rate_gap"] == 0.0
    assert metrics["replay_rate_gap"] == 0.0
