"""Sampling profiler accuracy-vs-overhead ablation.

The tentpole claim of the sampling subsystem (DESIGN.md §6.4): on
GEMM N=256 against a 512 KiB nest cache (~33.6M accesses, miss
fraction ~3.6% — dense enough that rare-event variance cannot mask a
broken estimator), the period-scaled traffic estimate at sample
period 128 must land within 5% relative error of the exact engine.
The observer's replay *is* the exact engine state (equality is
property-tested in tests/test_papi_sampling.py), so the reference
costs nothing extra here.

The ablation benchmark sweeps the sample period on a smaller GEMM
and records the estimate error at each rate next to the observer
overhead counters: more samples → more replay slices and records
(the overhead axis) → lower error (the accuracy axis). Error metrics
are deterministic for a fixed seed, so they are gated against the
frozen baseline; wall-clock is machine-dependent and rides along as
``info_``.
"""

import time

from repro.bench import benchmark
from repro.kernels import Gemm
from repro.machine.config import CacheConfig
from repro.measure import format_table
from repro.papi.sampling import SamplingConfig, SamplingObserver
from repro.units import KIB

#: The acceptance bound: estimate within 5% of exact at period <= 128.
ERROR_BOUND = 0.05
GATE_N = 256
GATE_CACHE_KIB = 512
GATE_PERIOD = 128

ABLATION_N = 128
ABLATION_CACHE_KIB = 128
ABLATION_PERIODS = (32, 128, 512)


def _observe(n: int, cache_kib: int, period: int, seed: int):
    kernel = Gemm(n)
    cache = CacheConfig(capacity_bytes=cache_kib * KIB)
    config = SamplingConfig(period=period, seed=seed)
    observer = SamplingObserver(cache, kernel.streams(), config)
    t0 = time.perf_counter()
    observer.observe_kernel(kernel)
    wall = time.perf_counter() - t0
    return observer, wall


@benchmark("sampling-accuracy-gate", tags=("papi", "sampling", "perf"))
def bench_sampling_gate(ctx):
    observer, wall = _observe(GATE_N, GATE_CACHE_KIB, GATE_PERIOD,
                              ctx.seed)
    errors = observer.relative_errors()
    exact = observer.exact_traffic()
    est = observer.estimated_traffic()
    overhead = observer.overhead()
    ctx.log(format_table(
        ["quantity", "exact", "estimated", "rel error"],
        [["read bytes", exact.read_bytes, round(est.read_bytes),
          f"{errors['read']:.4%}"],
         ["write bytes", exact.write_bytes, round(est.write_bytes),
          f"{errors['write']:.4%}"],
         ["total bytes", exact.read_bytes + exact.write_bytes,
          round(est.total_bytes), f"{errors['total']:.4%}"]],
        title=f"[sampling] GEMM N={GATE_N}, "
              f"{GATE_CACHE_KIB} KiB cache, period {GATE_PERIOD}: "
              f"{overhead['samples']:,} samples / "
              f"{observer.accesses_observed:,} accesses "
              f"in {wall:.2f}s"))
    return {
        # One-sided acceptance gate: 0 while the total estimate is
        # within the 5% bound; any positive value regresses.
        "error_bound_gap": max(
            0.0, (errors["total"] - ERROR_BOUND) / ERROR_BOUND),
        # The error values themselves (deterministic for fixed seed).
        "total_rel_error": errors["total"],
        "read_rel_error": errors["read"],
        "write_rel_error": errors["write"],
        "sample_fraction": (overhead["samples"]
                            / observer.accesses_observed),
        # Machine/timing observability, never gated.
        "info_wall_s": wall,
        "info_replay_slices": float(overhead["replay_slices"]),
        "info_records_kept": float(overhead["records_kept"]),
    }


@benchmark("sampling-period-ablation", tags=("papi", "sampling"))
def bench_sampling_ablation(ctx):
    rows = []
    metrics = {}
    for period in ABLATION_PERIODS:
        observer, wall = _observe(ABLATION_N, ABLATION_CACHE_KIB,
                                  period, ctx.seed)
        errors = observer.relative_errors()
        overhead = observer.overhead()
        rows.append([period, overhead["samples"],
                     overhead["replay_slices"],
                     f"{errors['total']:.4%}", f"{wall:.2f}"])
        metrics[f"total_rel_error_p{period}"] = errors["total"]
        metrics[f"info_wall_s_p{period}"] = wall
        metrics[f"info_samples_p{period}"] = float(overhead["samples"])
    ctx.log(format_table(
        ["period", "samples", "slices", "total err", "wall s"], rows,
        title=f"[sampling] GEMM N={ABLATION_N}, "
              f"{ABLATION_CACHE_KIB} KiB cache: accuracy vs overhead"))
    # No single-seed monotonicity gate: one draw of a 0.2% error can
    # land above or below one draw of a 0.15% error. The monotone-in-
    # expectation law is asserted over averaged seeds by the
    # hypothesis property test in tests/test_papi_sampling.py; here
    # the per-period errors themselves are gated (deterministic for
    # the frozen seed).
    return metrics


def test_sampling_period_ablation(run_bench):
    _, metrics = run_bench(bench_sampling_ablation)
    # Every swept period satisfies the acceptance bound at this
    # (dense-miss) operating point; the sweep spans a 16x rate range.
    for period in ABLATION_PERIODS:
        assert metrics[f"total_rel_error_p{period}"] < ERROR_BOUND
