"""Fig 4: the Fig-3 pair measured directly (perf_uncore, Tellico).

Shape asserted: identical qualitative behaviour without PCP in the
loop — the divergence is not a PCP artifact, and the PCP path is as
accurate as direct access.
"""


def test_fig4(run_once):
    result = run_once("fig4")
    single = {r[0]: r[7] for r in result.extras["single"]}
    batched = {r[0]: r[7] for r in result.extras["batched"]}
    sizes = sorted(single)
    small = [n for n in sizes if n <= 640]
    # Tellico cores see 5 MB shares too: batched matches below ~809.
    assert all(abs(batched[n] - 1.0) < 0.12 for n in small[2:])
    assert all(batched[n] > 50 for n in sizes if n >= 1024)
    # Single-thread divergence present without PCP.
    assert any(single[n] > 1.5 for n in sizes if n >= 1024)
