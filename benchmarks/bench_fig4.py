"""Fig 4: the Fig-3 pair measured directly (perf_uncore, Tellico).

Shape asserted: identical qualitative behaviour without PCP in the
loop — the divergence is not a PCP artifact, and the PCP path is as
accurate as direct access.
"""

from repro.bench import benchmark


@benchmark("fig4", tags=("figure", "gemm", "uncore"))
def bench_fig4(ctx):
    result = ctx.run_experiment("fig4")
    single = {r[0]: r[7] for r in result.extras["single"]}
    batched = {r[0]: r[7] for r in result.extras["batched"]}
    sizes = sorted(single)
    small = [n for n in sizes if n <= 640]
    large = [n for n in sizes if n >= 1024]
    return {
        "batched_small_dev": max(abs(batched[n] - 1.0)
                                 for n in small[2:]),
        "batched_large_min": min(batched[n] for n in large),
        "single_large_max": max(single[n] for n in large),
    }


def test_fig4(run_bench):
    ctx, metrics = run_bench(bench_fig4)
    result = ctx.results["fig4"]
    single = {r[0]: r[7] for r in result.extras["single"]}
    batched = {r[0]: r[7] for r in result.extras["batched"]}
    sizes = sorted(single)
    small = [n for n in sizes if n <= 640]
    # Tellico cores see 5 MB shares too: batched matches below ~809.
    assert all(abs(batched[n] - 1.0) < 0.12 for n in small[2:])
    assert metrics["batched_small_dev"] < 0.12
    assert metrics["batched_large_min"] > 50
    # Single-thread divergence present without PCP.
    assert metrics["single_large_max"] > 1.5
