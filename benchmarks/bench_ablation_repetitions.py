"""Ablation: the repetition/aggregation methodology (§III, Eq. 5).

Compares measurement error |measured/expected - 1| for small-to-medium
GEMMs under four strategies:

* 1 repetition (Fig 2's setting),
* Eq. 5 adaptive repetitions with mean aggregation (the paper),
* fixed 500 repetitions (what Eq. 5 avoids paying at large N),
* 1 repetition per run, MIN aggregation over runs (the Intel-era
  strategy of the paper's ref. [9]).

Asserted shape: Eq. 5 beats 1-rep everywhere; at large N Eq. 5 matches
the accuracy of fixed-500 while running ~50x fewer kernels; min-of-runs
also suppresses the additive noise floor at 1 rep.
"""

from repro.bench import benchmark
from repro.kernels import Gemm
from repro.measure import (
    MeasurementSession,
    aggregate,
    format_table,
    repetitions_for,
)

#: Noise-dominated sizes (well below the Eq. 3 boundary, so any error
#: is measurement noise rather than genuine cache-spill divergence).
SIZES = (96, 176, 256)


def error(ratio):
    return abs(ratio - 1.0)


@benchmark("ablation-repetitions", tags=("ablation", "methodology"))
def bench_ablation_repetitions(ctx):
    session = MeasurementSession("summit", via="pcp", seed=ctx.seed)
    rows = []
    metrics = {}
    for n in SIZES:
        kernel = Gemm(n)
        # Expected single-repetition error: average over runs so a
        # lucky draw does not masquerade as accuracy.
        one_err = sum(
            error(session.measure_kernel(kernel,
                                         repetitions=1).read_ratio)
            for _ in range(10)) / 10
        eq5_reps = repetitions_for(n)
        eq5 = session.measure_kernel(kernel, repetitions=eq5_reps)
        fixed = session.measure_kernel(kernel, repetitions=500)
        min_runs = aggregate(
            [session.measure_kernel(kernel, repetitions=1).read_ratio
             for _ in range(15)], how="min")
        rows.append([
            n,
            round(one_err, 4),
            round(error(eq5.read_ratio), 4), eq5_reps,
            round(error(fixed.read_ratio), 4),
            round(error(min_runs), 4),
        ])
        metrics[f"n{n}_one_rep_err"] = one_err
        metrics[f"n{n}_eq5_err"] = error(eq5.read_ratio)
        metrics[f"n{n}_eq5_reps"] = eq5_reps
        metrics[f"n{n}_fixed_err"] = error(fixed.read_ratio)
        metrics[f"n{n}_min_runs_err"] = error(min_runs)
    ctx.log(format_table(
        ["N", "err @1 rep", "err @Eq.5", "Eq.5 reps", "err @500 reps",
         "err @min-of-15"],
        rows, title="[ablation] repetition & aggregation strategies"))
    return metrics


def test_ablation_repetitions(run_bench):
    _, metrics = run_bench(bench_ablation_repetitions)
    for n in SIZES:
        # Eq. 5 always improves on a single repetition...
        assert metrics[f"n{n}_eq5_err"] < metrics[f"n{n}_one_rep_err"]
        # ...and is within noise of the 50x-more-expensive fixed-500.
        assert (metrics[f"n{n}_eq5_err"]
                < metrics[f"n{n}_fixed_err"] + 0.05)
        # min-of-runs also suppresses the additive noise floor.
        assert (metrics[f"n{n}_min_runs_err"]
                < metrics[f"n{n}_one_rep_err"])
