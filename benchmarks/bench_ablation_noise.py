"""Ablation: which noise mechanism produces which figure feature.

The noise model has three mechanisms (background rate, fixed-per-window
bytes, fixed-per-repetition bytes) plus capture jitter. Disabling them
one at a time shows each figure feature has exactly one owner:

* the Fig 2 small-N noise floor needs the *window* components — with
  them off (but per-rep noise on), a 1-repetition measurement of a tiny
  GEMM is already clean apart from the per-rep bias;
* the Fig 5 write excess needs the *per-repetition* component — with it
  off, capped-GEMV writes match expectation at every M.
"""

import dataclasses

from repro.bench import benchmark
from repro.kernels import CappedGemv, Gemm
from repro.measure import MeasurementSession, format_table
from repro.noise import NoiseConfig

FULL = NoiseConfig()
NO_WINDOW = dataclasses.replace(
    FULL, background_read_rate=0.0, background_write_rate=0.0,
    fixed_read_bytes=0.0, fixed_write_bytes=0.0,
    window_overhead_pcp=0.0, window_overhead_direct=0.0,
    capture_sigma0=0.0)
NO_PER_REP = dataclasses.replace(
    FULL, per_rep_read_bytes=0.0, per_rep_write_bytes=0.0)


@benchmark("ablation-noise", tags=("ablation", "noise"))
def bench_ablation_noise(ctx):
    data = {}
    # --- Fig 2 noise floor: owned by the window mechanisms -------
    for label, cfg in (("full", FULL), ("no-window", NO_WINDOW)):
        session = MeasurementSession("summit", seed=ctx.seed, noise=cfg)
        r = session.measure_kernel(Gemm(64), repetitions=1)
        data[("fig2", label)] = r.read_ratio
    # --- Fig 5 write excess: owned by the per-rep mechanism ------
    for label, cfg in (("full", FULL), ("no-per-rep", NO_PER_REP)):
        session = MeasurementSession("summit", seed=ctx.seed, noise=cfg)
        k = CappedGemv(m=512, n=512, p=512)
        r = session.measure_kernel(k, n_cores=21, repetitions=388)
        data[("fig5", label)] = r.write_ratio
    ctx.log(format_table(
        ["feature", "noise config", "ratio"],
        [["fig2 small-N read floor", "full",
          round(data[("fig2", "full")], 2)],
         ["fig2 small-N read floor", "no-window",
          round(data[("fig2", "no-window")], 2)],
         ["fig5 write excess", "full",
          round(data[("fig5", "full")], 2)],
         ["fig5 write excess", "no-per-rep",
          round(data[("fig5", "no-per-rep")], 2)]],
        title="[ablation] noise mechanisms vs figure features"))
    return {
        "fig2_full_ratio": data[("fig2", "full")],
        "fig2_no_window_ratio": data[("fig2", "no-window")],
        "fig5_full_write_ratio": data[("fig5", "full")],
        "fig5_no_per_rep_write_dev": abs(
            data[("fig5", "no-per-rep")] - 1.0),
    }


def test_ablation_noise_mechanisms(run_bench):
    import pytest

    _, metrics = run_bench(bench_ablation_noise)
    # The floor is a window effect...
    assert metrics["fig2_full_ratio"] > 3.0
    assert metrics["fig2_no_window_ratio"] < 2.5
    # ...the write excess is a per-repetition effect.
    assert metrics["fig5_full_write_ratio"] > 2.0
    assert metrics["fig5_no_per_rep_write_dev"] == pytest.approx(
        0.0, abs=0.15)
