"""Extension: 3D-FFT communication volume vs grid aspect ratio.

Asserted shape: the S1CF resort signature (2 reads : 1 write) is
invariant across decompositions, while the All2All volume depends on
the grid shape (degenerate 1xP / Px1 grids drop one exchange).
"""

import pytest


def test_ext_gridshape(run_once):
    result = run_once("ext-gridshape", n=1024)
    per = result.extras["per_shape"]
    for shape, data in per.items():
        assert data["s1cf_ratio"] == pytest.approx(2.0, abs=0.1), shape
    assert per[(2, 4)]["net_bytes"] > per[(1, 8)]["net_bytes"]
    assert per[(2, 4)]["net_bytes"] > per[(8, 1)]["net_bytes"]
