"""Extension: 3D-FFT communication volume vs grid aspect ratio.

Asserted shape: the S1CF resort signature (2 reads : 1 write) is
invariant across decompositions, while the All2All volume depends on
the grid shape (degenerate 1xP / Px1 grids drop one exchange).
"""

from repro.bench import benchmark


@benchmark("ext-gridshape", tags=("extension", "fft3d", "mpi"))
def bench_ext_gridshape(ctx):
    result = ctx.run_experiment("ext-gridshape", n=1024)
    per = result.extras["per_shape"]
    return {
        "s1cf_ratio_dev": max(abs(data["s1cf_ratio"] - 2.0)
                              for data in per.values()),
        "net_2x4_over_1x8": (per[(2, 4)]["net_bytes"]
                             / per[(1, 8)]["net_bytes"]),
        "net_2x4_over_8x1": (per[(2, 4)]["net_bytes"]
                             / per[(8, 1)]["net_bytes"]),
    }


def test_ext_gridshape(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_ext_gridshape)
    per = ctx.results["ext-gridshape"].extras["per_shape"]
    for shape, data in per.items():
        assert data["s1cf_ratio"] == pytest.approx(2.0, abs=0.1), shape
    assert metrics["s1cf_ratio_dev"] < 0.1
    assert metrics["net_2x4_over_1x8"] > 1.0
    assert metrics["net_2x4_over_8x1"] > 1.0
