"""Ablation: how much does the PCP daemon indirection actually cost?

Tellico's privileged user can measure the *same* kernels both ways, so
the two paths are compared on identical hardware: the PCP path pays a
daemon round trip per fetch (milliseconds of extra measurement window)
while direct perf_uncore reads pay microseconds. Asserted shape: the
paths disagree noticeably only for kernels whose runtime is comparable
to the round trip; from millisecond-scale kernels up, the PCP
measurements are "as accurate as" direct ones — the paper's central
accuracy claim, quantified.
"""

from repro.bench import benchmark
from repro.kernels import Gemm
from repro.measure import MeasurementSession, format_table, repetitions_for

SIZES = (64, 256, 1024)
SEED = 4242


@benchmark("ablation-pcp-overhead", tags=("ablation", "pcp"))
def bench_ablation_pcp_overhead(ctx):
    rows = []
    metrics = {}
    for n in SIZES:
        reps = repetitions_for(n)
        via_pcp = MeasurementSession("tellico", via="pcp", seed=SEED)
        via_direct = MeasurementSession(
            "tellico", via="perf_event_uncore", seed=SEED)
        cores = via_pcp.batch_core_count()
        a = via_pcp.measure_kernel(Gemm(n), n_cores=cores,
                                   repetitions=reps)
        b = via_direct.measure_kernel(Gemm(n), n_cores=cores,
                                      repetitions=reps)
        gap = abs(a.read_ratio - b.read_ratio)
        rows.append([
            n, round(a.runtime_per_rep * 1e3, 3),
            round(a.read_ratio, 4), round(b.read_ratio, 4),
            round(gap, 4),
        ])
        metrics[f"n{n}_kernel_ms"] = a.runtime_per_rep * 1e3
        metrics[f"n{n}_pcp_gap"] = gap
    ctx.log(format_table(
        ["N", "kernel ms", "read ratio via PCP", "read ratio direct",
         "|gap|"],
        rows,
        title="[ablation] PCP daemon indirection vs direct reads "
              "(same machine)"))
    return metrics


def test_ablation_pcp_overhead(run_bench):
    _, metrics = run_bench(bench_ablation_pcp_overhead)
    # Millisecond-and-up kernels: the two paths agree closely.
    assert metrics["n1024_pcp_gap"] < 0.05
    assert metrics["n256_pcp_gap"] < 0.10
