"""Fig 3: GEMM with adaptive repetitions (Eq. 5) on Summit via PCP.

Shape asserted: (a) single-thread measurements are clean at small N
(repetitions amortise the noise) and diverge gradually with NO jump at
the per-core 5 MB boundary (idle-slice re-appropriation); (b) batched
runs match expectation below N≈809 and jump drastically above.
"""

from repro.bench import benchmark


@benchmark("fig3", tags=("figure", "gemm", "pcp"))
def bench_fig3(ctx):
    result = ctx.run_experiment("fig3")
    single = {r[0]: r[7] for r in result.extras["single"]}
    batched = {r[0]: r[7] for r in result.extras["batched"]}
    sizes = sorted(single)
    below = [n for n in sizes if n <= 720]
    inside = [n for n in sizes if 720 <= n <= 2048]
    above = [n for n in sizes if n >= 1024]
    return {
        "single_small_dev": abs(single[below[0]] - 1.0),
        "single_max_step": max(single[b] / single[a]
                               for a, b in zip(inside, inside[1:])),
        "batched_below_dev": max(abs(batched[n] - 1.0)
                                 for n in below[2:]),
        "batched_above_min": min(batched[n] for n in above),
    }


def test_fig3(run_bench):
    ctx, metrics = run_bench(bench_fig3)
    result = ctx.results["fig3"]
    single = {r[0]: r[7] for r in result.extras["single"]}
    batched = {r[0]: r[7] for r in result.extras["batched"]}
    sizes = sorted(single)
    below = [n for n in sizes if n <= 720]
    # (a) small sizes cleaned up by repetitions.
    assert metrics["single_small_dev"] < 1.5
    # (a) gradual divergence while still inside the 110 MB budget: each
    # step grows by at most an order of magnitude (no drastic jump).
    inside = [n for n in sizes if 720 <= n <= 2048]
    assert all(single[n] > 1.2 for n in inside[1:])
    assert metrics["single_max_step"] < 10
    # (b) batched: clean below the boundary, drastic jump above.
    assert all(abs(batched[n] - 1.0) < 0.1 for n in below[2:])
    assert metrics["batched_below_dev"] < 0.1
    assert metrics["batched_above_min"] > 50
