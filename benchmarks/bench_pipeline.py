"""Pipelined exact engine vs sequential generate-then-simulate.

The tentpole claim of the streaming subsystem (DESIGN.md §6.3): on a
GEMM N=256 trace (~33.6M accesses), overlapping segment generation
with a persistent shard-worker pool must beat the sequential pipeline
— materialize the full ``exact_trace()``, then feed it to a 4-shard
:class:`ShardedExactEngine` — by at least 2x end to end, while
producing byte-identical traffic. Worker utilization and producer
queue depth are recorded as ``info_`` metrics: real observability
data, but machine-dependent, so the baseline gate ignores them.
"""

import time

from repro.bench import benchmark
from repro.engine.exact import ShardedExactEngine
from repro.engine.pipeline import PipelinedExactEngine
from repro.kernels import Gemm
from repro.machine.config import CacheConfig
from repro.measure import format_table
from repro.units import MIB

CACHE = CacheConfig(capacity_bytes=4 * MIB)
N = 256
#: Shards for the sequential reference: the bench-suite convention
#: (bench_exact_engine) and the pre-pipeline production setting.
SEQ_SHARDS = 4
REQUIRED_SPEEDUP = 2.0


def _rel_dev(got: int, ref: int) -> float:
    return abs(got - ref) / ref if ref else float(got != ref)


@benchmark("pipeline-engine", tags=("engine", "pipeline", "perf"))
def bench_pipeline(ctx):
    kernel = Gemm(N)
    streams = kernel.streams()

    # Sequential: generate the whole trace, then simulate it sharded.
    t0 = time.perf_counter()
    trace = kernel.exact_trace()
    t_gen = time.perf_counter() - t0
    t0 = time.perf_counter()
    seq = ShardedExactEngine(CACHE, n_shards=SEQ_SHARDS).run_nest(
        streams, trace)
    t_seq_sim = time.perf_counter() - t0
    del trace
    t_seq = t_gen + t_seq_sim

    # Pipelined: segments stream into the worker pool as they land.
    t0 = time.perf_counter()
    with PipelinedExactEngine(CACHE) as eng:
        piped = eng.run_kernel(kernel)
    t_piped = time.perf_counter() - t0
    stats = eng.last_pipeline_stats

    speedup = t_seq / t_piped
    ctx.log(format_table(
        ["path", "seconds", "read bytes", "write bytes"],
        [["generate", round(t_gen, 3), "-", "-"],
         [f"sharded x{SEQ_SHARDS} sim", round(t_seq_sim, 3),
          seq.read_bytes, seq.write_bytes],
         ["sequential total", round(t_seq, 3), "-", "-"],
         [f"pipelined ({stats['mode']}, "
          f"{stats['n_workers']} workers)", round(t_piped, 3),
          piped.read_bytes, piped.write_bytes]],
        title=f"[pipeline] GEMM N={N} ({stats['rows']:,} accesses), "
              f"speedup {speedup:.2f}x, utilization "
              f"{stats['utilization']:.2f}, queue depth "
              f"{stats['mean_queue_depth']:.2f}/"
              f"{stats['max_queue_depth']}"))
    return {
        "rows_macc": stats["rows"] / 1e6,
        "segments": float(stats["segments"]),
        # One-sided gate: 0 while pipelining clears the required 2x
        # over generate-then-simulate; any positive value regresses.
        "speedup_shortfall_gap": max(
            0.0, (REQUIRED_SPEEDUP - speedup) / REQUIRED_SPEEDUP),
        # Exactness: segment streaming must not move a byte.
        "piped_read_dev": _rel_dev(piped.read_bytes, seq.read_bytes),
        "piped_write_dev": _rel_dev(piped.write_bytes, seq.write_bytes),
        # Observability, never gated (machine-dependent).
        "info_utilization": stats["utilization"],
        "info_mean_queue_depth": stats["mean_queue_depth"],
        "info_max_queue_depth": float(stats["max_queue_depth"]),
        "info_producer_stall_s": stats["producer_stall_s"],
    }


def test_pipeline_beats_sequential(run_bench):
    _, metrics = run_bench(bench_pipeline)
    assert metrics["piped_read_dev"] == 0.0
    assert metrics["piped_write_dev"] == 0.0
    assert metrics["speedup_shortfall_gap"] == 0.0
