"""Fig 10: S1CF/S2CF in a 16-node, 4x8-grid job at N = 1344 and 2016.

Shape asserted: 2 reads per write in S1CF, 1 read per write in S2CF,
tight min/max bands across ranks and runs (large problems measure
cleanly with a single run, as the paper notes).
"""

from repro.bench import benchmark


@benchmark("fig10", tags=("figure", "fft3d", "mpi"))
def bench_fig10(ctx):
    result = ctx.run_experiment("fig10", n_runs=2)
    per = result.extras["per_routine"]
    metrics = {}
    for n in (1344, 2016):
        metrics[f"s1cf_n{n}_ratio_dev"] = abs(
            per["s1cf"][n]["ratio"] - 2.0)
        metrics[f"s2cf_n{n}_ratio_dev"] = abs(
            per["s2cf"][n]["ratio"] - 1.0)
        reads = per["s1cf"][n]["reads"]
        metrics[f"s1cf_n{n}_band_spread"] = max(reads) / min(reads)
    return metrics


def test_fig10(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig10)
    per = ctx.results["fig10"].extras["per_routine"]
    for n in (1344, 2016):
        assert per["s1cf"][n]["ratio"] == pytest.approx(2.0, abs=0.1)
        assert per["s2cf"][n]["ratio"] == pytest.approx(1.0, abs=0.1)
        # Band tightness at scale: min/max within ~15%.
        reads = per["s1cf"][n]["reads"]
        assert max(reads) < 1.2 * min(reads)
        assert metrics[f"s1cf_n{n}_band_spread"] < 1.2
