"""Fig 10: S1CF/S2CF in a 16-node, 4x8-grid job at N = 1344 and 2016.

Shape asserted: 2 reads per write in S1CF, 1 read per write in S2CF,
tight min/max bands across ranks and runs (large problems measure
cleanly with a single run, as the paper notes).
"""

import pytest


def test_fig10(run_once):
    result = run_once("fig10", n_runs=2)
    per = result.extras["per_routine"]
    for n in (1344, 2016):
        assert per["s1cf"][n]["ratio"] == pytest.approx(2.0, abs=0.1)
        assert per["s2cf"][n]["ratio"] == pytest.approx(1.0, abs=0.1)
        # Band tightness at scale: min/max within ~15%.
        reads = per["s1cf"][n]["reads"]
        assert max(reads) < 1.2 * min(reads)
