"""Fig 6: S1CF loop nest 1 — cache-bypassing sequential stores.

Shape asserted: ~1 read per element without flags (the expected second
read is absent: stores bypass), ~2 reads with -fprefetch-loop-arrays.
"""

import pytest


def test_fig6(run_once):
    result = run_once("fig6")
    plain = {r[0]: r for r in result.extras["plain"]}
    flagged = {r[0]: r for r in result.extras["prefetch"]}
    stable = [n for n in plain if n >= 768]
    for n in stable:
        assert plain[n][2] == pytest.approx(1.0, abs=0.15), n
        assert plain[n][4] == pytest.approx(1.0, abs=0.15), n
        assert flagged[n][2] == pytest.approx(2.0, abs=0.25), n
        assert flagged[n][4] == pytest.approx(1.0, abs=0.15), n
