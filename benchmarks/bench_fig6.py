"""Fig 6: S1CF loop nest 1 — cache-bypassing sequential stores.

Shape asserted: ~1 read per element without flags (the expected second
read is absent: stores bypass), ~2 reads with -fprefetch-loop-arrays.
"""

from repro.bench import benchmark


@benchmark("fig6", tags=("figure", "fft3d", "resort"))
def bench_fig6(ctx):
    result = ctx.run_experiment("fig6")
    plain = {r[0]: r for r in result.extras["plain"]}
    flagged = {r[0]: r for r in result.extras["prefetch"]}
    stable = [n for n in plain if n >= 768]
    return {
        "plain_read_dev": max(abs(plain[n][2] - 1.0) for n in stable),
        "plain_write_dev": max(abs(plain[n][4] - 1.0) for n in stable),
        "flagged_read_dev": max(abs(flagged[n][2] - 2.0)
                                for n in stable),
        "flagged_write_dev": max(abs(flagged[n][4] - 1.0)
                                 for n in stable),
    }


def test_fig6(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig6)
    result = ctx.results["fig6"]
    plain = {r[0]: r for r in result.extras["plain"]}
    flagged = {r[0]: r for r in result.extras["prefetch"]}
    stable = [n for n in plain if n >= 768]
    for n in stable:
        assert plain[n][2] == pytest.approx(1.0, abs=0.15), n
        assert plain[n][4] == pytest.approx(1.0, abs=0.15), n
        assert flagged[n][2] == pytest.approx(2.0, abs=0.25), n
        assert flagged[n][4] == pytest.approx(1.0, abs=0.15), n
    assert metrics["plain_read_dev"] < 0.15
    assert metrics["flagged_read_dev"] < 0.25
