"""Extension: the measurement methodology on a POWER10-class machine.

The paper's future work. Asserted shape: the Eq. 3/4 divergence band
tracks the larger per-core L3 (8 MB -> N in [591, 1024]); batched GEMM
stays exact below the new boundary and jumps past it — one boundary
step later than on Summit.
"""

import pytest


def test_ext_power10(run_once):
    result = run_once("ext-power10")
    lo, hi = result.extras["band"]
    assert lo == pytest.approx(591, abs=2)
    assert hi == pytest.approx(1024, abs=2)
    batched = result.extras["batched"]
    # Clean below the new boundary (the band's lower edge moved from
    # 467 to 591, so 512 now sits comfortably inside the cached regime).
    assert batched[512] == pytest.approx(1.0, abs=0.05)
    assert batched[720] == pytest.approx(1.0, abs=0.05)
    # The drastic jump begins at the new 8 MB boundary (N ~ 1024).
    assert batched[1024] > 50
    assert batched[2048] > 100
