"""Extension: the measurement methodology on a POWER10-class machine.

The paper's future work. Asserted shape: the Eq. 3/4 divergence band
tracks the larger per-core L3 (8 MB -> N in [591, 1024]); batched GEMM
stays exact below the new boundary and jumps past it — one boundary
step later than on Summit.
"""

from repro.bench import benchmark


@benchmark("ext-power10", tags=("extension", "gemm"))
def bench_ext_power10(ctx):
    result = ctx.run_experiment("ext-power10")
    lo, hi = result.extras["band"]
    batched = result.extras["batched"]
    return {
        "band_lo": lo,
        "band_hi": hi,
        "batched_512_dev": abs(batched[512] - 1.0),
        "batched_720_dev": abs(batched[720] - 1.0),
        "batched_1024_ratio": batched[1024],
        "batched_2048_ratio": batched[2048],
    }


def test_ext_power10(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_ext_power10)
    assert metrics["band_lo"] == pytest.approx(591, abs=2)
    assert metrics["band_hi"] == pytest.approx(1024, abs=2)
    # Clean below the new boundary (the band's lower edge moved from
    # 467 to 591, so 512 now sits comfortably inside the cached regime).
    assert metrics["batched_512_dev"] < 0.05
    assert metrics["batched_720_dev"] < 0.05
    # The drastic jump begins at the new 8 MB boundary (N ~ 1024).
    assert metrics["batched_1024_ratio"] > 50
    assert metrics["batched_2048_ratio"] > 100
