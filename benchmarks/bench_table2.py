"""Table II: supplemental performance events (NVML, InfiniBand)."""


def test_table2(run_once):
    result = run_once("table2")
    assert any(":power" in e for e in result.extras["nvml_events"])
    assert any("port_recv_data" in e for e in result.extras["ib_events"])
