"""Table II: supplemental performance events (NVML, InfiniBand)."""

from repro.bench import benchmark


@benchmark("table2", tags=("table", "events"))
def bench_table2(ctx):
    result = ctx.run_experiment("table2")
    nvml = result.extras["nvml_events"]
    ib = result.extras["ib_events"]
    return {
        "nvml_events": len(nvml),
        "ib_events": len(ib),
        "nvml_power_events": sum(1 for e in nvml if ":power" in e),
        "ib_recv_events": sum(1 for e in ib if "port_recv_data" in e),
    }


def test_table2(run_bench):
    ctx, metrics = run_bench(bench_table2)
    result = ctx.results["table2"]
    assert any(":power" in e for e in result.extras["nvml_events"])
    assert any("port_recv_data" in e for e in result.extras["ib_events"])
    assert metrics["nvml_power_events"] >= 1
    assert metrics["ib_recv_events"] >= 1
