"""Shared benchmark plumbing.

Every benchmark regenerates one table/figure via the experiment
registry, prints the rows (so `pytest benchmarks/ --benchmark-only -s`
reproduces the paper's evaluation verbatim), and asserts the
qualitative shape. `run_once` wraps pytest-benchmark's pedantic mode:
experiments are deterministic, so a single timed round suffices.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment

SEED = 20230613


@pytest.fixture
def run_once(benchmark):
    """Time one deterministic execution of an experiment and print it."""

    def _run(experiment_id: str, **kwargs):
        kwargs.setdefault("seed", SEED)
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **kwargs),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        print()
        print(result.render())
        return result

    return _run
