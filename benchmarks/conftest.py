"""Shared benchmark plumbing.

Every benchmark regenerates one table/figure, registers itself with
:func:`repro.bench.benchmark`, and returns a flat dict of numeric
metrics (the result-dict convention the parallel runner ships into
``BENCH_<sha>.json``). The pytest layer below wraps the same
registered callables: ``run_bench`` times one deterministic execution
via pytest-benchmark's pedantic mode, prints the regenerated tables
(so ``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
evaluation verbatim), and hands back both the
:class:`~repro.bench.BenchContext` (full experiment results for shape
assertions) and the metric dict.
"""

from __future__ import annotations

import pytest

from repro.bench.registry import DEFAULT_SEED, BenchContext

SEED = DEFAULT_SEED


@pytest.fixture
def run_bench(benchmark):
    """Time one registered benchmark callable and print its tables."""

    def _run(func):
        ctx = BenchContext(seed=SEED)
        spec = func.benchmark_spec
        metrics = benchmark.pedantic(
            lambda: spec.run(ctx),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        for result in ctx.results.values():
            print()
            print(result.render())
        for text in ctx.logs:
            print()
            print(text)
        return ctx, metrics

    return _run
