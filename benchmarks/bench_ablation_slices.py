"""Ablation: L3 idle-slice re-appropriation.

The paper explains why single-threaded GEMM shows *no* traffic jump at
N ≈ 809 (the 5 MB per-core boundary): "their local L3 cache slices can
be re-appropriated by the active core, giving the active core 110 MB
worth of cache." This ablation confines the lone core to its 5 MB
share (``assume_socket_busy=True``) and shows the model would then
predict a drastic jump the paper does not observe — the
re-appropriation mechanism is load-bearing.
"""

from repro.bench import benchmark
from repro.engine.executor import Executor
from repro.kernels import Gemm
from repro.machine.config import SUMMIT
from repro.machine.node import Node
from repro.measure import format_table
from repro.noise import QUIET

SIZES = (512, 1024, 1456)


@benchmark("ablation-slices", tags=("ablation", "cache"))
def bench_ablation_slices(ctx):
    rows = []
    metrics = {}
    for n in SIZES:
        kernel = Gemm(n)
        expected = kernel.expected_traffic().read_bytes
        node = Node(SUMMIT, seed=1, noise=QUIET)
        executor = Executor(node)
        with_reapp = executor.run(kernel, noisy=False).true_traffic
        node2 = Node(SUMMIT, seed=1, noise=QUIET)
        ablated = Executor(node2).run(
            kernel, noisy=False,
            assume_socket_busy=True).true_traffic
        rows.append([
            n,
            round(with_reapp.read_bytes / expected, 2),
            round(ablated.read_bytes / expected, 2),
        ])
        metrics[f"n{n}_reappropriated_ratio"] = (
            with_reapp.read_bytes / expected)
        metrics[f"n{n}_confined_ratio"] = (
            ablated.read_bytes / expected)
    ctx.log(format_table(
        ["N", "read ratio (110 MB re-appropriated)",
         "read ratio (confined to 5 MB)"],
        rows,
        title="[ablation] single-thread GEMM with/without idle-slice "
              "re-appropriation"))
    return metrics


def test_ablation_slice_reappropriation(run_bench):
    import pytest

    _, metrics = run_bench(bench_ablation_slices)
    # Below the boundary both stay near the expectation (the spill
    # mechanism already adds a mild excess to the re-appropriated case).
    assert metrics["n512_confined_ratio"] == pytest.approx(1.0, abs=0.1)
    assert metrics["n512_reappropriated_ratio"] < 2.0
    # Above it: re-appropriation keeps the divergence gradual (the
    # paper's observation); confinement would predict a drastic jump
    # at N ~ 809 that the measurements do not show.
    for n in (1024, 1456):
        assert metrics[f"n{n}_reappropriated_ratio"] < 10
        assert metrics[f"n{n}_confined_ratio"] > 50
