"""Fig 7: S1CF loop nest 2 — strided reads and Eq. 7's boundary.

Shape asserted: reads per element ramp from 2 (below N≈724) to 5
(above), writes stay at 1; the prefetch flag substantially raises the
achieved bandwidth without changing the asymptotic traffic shape.
"""

from repro.bench import benchmark


@benchmark("fig7", tags=("figure", "fft3d", "resort"))
def bench_fig7(ctx):
    result = ctx.run_experiment("fig7")
    plain = {r[0]: r for r in result.extras["plain"]}
    flagged = {r[0]: r for r in result.extras["prefetch"]}
    below = [n for n in plain if 384 <= n <= 640]
    above = [n for n in plain if n >= 896]
    return {
        "eq7_boundary": result.extras["eq7_boundary"],
        "below_read_dev": max(abs(plain[n][2] - 2.0) for n in below),
        "above_read_dev": max(abs(plain[n][2] - 5.0) for n in above),
        "above_write_dev": max(abs(plain[n][4] - 1.0) for n in above),
        "flag_speedup_min": min(flagged[n][8] / plain[n][8]
                                for n in above),
    }


def test_fig7(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig7)
    result = ctx.results["fig7"]
    assert result.extras["eq7_boundary"] == pytest.approx(724, abs=1)
    plain = {r[0]: r for r in result.extras["plain"]}
    flagged = {r[0]: r for r in result.extras["prefetch"]}
    below = [n for n in plain if 384 <= n <= 640]
    above = [n for n in plain if n >= 896]
    for n in below:
        assert plain[n][2] == pytest.approx(2.0, abs=0.4), n
    for n in above:
        assert plain[n][2] == pytest.approx(5.0, abs=0.4), n
        assert plain[n][4] == pytest.approx(1.0, abs=0.15), n
        # "significant improvement in performance" with the flag:
        assert flagged[n][8] > 2 * plain[n][8], n
    assert metrics["below_read_dev"] < 0.4
    assert metrics["flag_speedup_min"] > 2.0
