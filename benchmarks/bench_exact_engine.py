"""Exact-engine speed tiers: scalar oracle vs batch vs set-sharded.

The vectorized batch path must (a) reproduce the scalar oracle's
traffic byte-for-byte and (b) beat it by at least 25x on the GEMM
cross-validation trace — the margin that makes N=256 cross-validation
tractable in test time. The sharded engine must agree exactly too; its
wall-clock win only materializes with >1 core, so only its correctness
is gated here (timings are logged for inspection).
"""

import time

from repro.bench import benchmark
from repro.engine.exact import ExactEngine, ShardedExactEngine
from repro.engine.tracecache import cached_exact_trace
from repro.kernels import Gemm
from repro.machine.config import CacheConfig
from repro.measure import format_table
from repro.units import MIB

#: The cross-validation configuration (tests/test_engine_crossval.py).
CACHE = CacheConfig(capacity_bytes=4 * MIB)
N = 160
REQUIRED_SPEEDUP = 25.0


def _rel_dev(got: int, ref: int) -> float:
    return abs(got - ref) / ref if ref else float(got != ref)


@benchmark("exact-engine", tags=("engine", "perf"))
def bench_exact_engine(ctx):
    kernel = Gemm(N)
    streams = kernel.streams()

    t0 = time.perf_counter()
    trace = cached_exact_trace(kernel)
    t_trace = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar = ExactEngine(CACHE).run_nest(streams,
                                         kernel.exact_accesses())
    t_scalar = time.perf_counter() - t0

    t_batch = float("inf")
    for _ in range(3):  # best-of-3: the batch pass is cheap
        t0 = time.perf_counter()
        batch = ExactEngine(CACHE).run_nest(streams, trace)
        t_batch = min(t_batch, time.perf_counter() - t0)

    t0 = time.perf_counter()
    sharded = ShardedExactEngine(CACHE, n_shards=4).run_nest(
        streams, trace)
    t_sharded = time.perf_counter() - t0

    speedup = t_scalar / t_batch
    ctx.log(format_table(
        ["tier", "seconds", "read bytes", "write bytes"],
        [["trace generation", round(t_trace, 3), "-", "-"],
         ["scalar oracle", round(t_scalar, 3),
          scalar.read_bytes, scalar.write_bytes],
         ["batch", round(t_batch, 3),
          batch.read_bytes, batch.write_bytes],
         ["sharded x4", round(t_sharded, 3),
          sharded.read_bytes, sharded.write_bytes]],
        title=f"[engine] exact GEMM N={N} "
              f"({len(trace):,} accesses), batch speedup "
              f"{speedup:.1f}x"))
    # The raw speedup is logged, not returned: timings drift with
    # machine load, so only the one-sided shortfall below is gated.
    return {
        "trace_macc": len(trace) / 1e6,
        # One-sided gate: 0 while the batch path clears the required
        # 25x; any positive value is a regression.
        "speedup_shortfall_gap": max(
            0.0, (REQUIRED_SPEEDUP - speedup) / REQUIRED_SPEEDUP),
        # Exactness: all tiers must match the oracle byte-for-byte.
        "batch_read_dev": _rel_dev(batch.read_bytes, scalar.read_bytes),
        "batch_write_dev": _rel_dev(batch.write_bytes,
                                    scalar.write_bytes),
        "sharded_read_dev": _rel_dev(sharded.read_bytes,
                                     scalar.read_bytes),
        "sharded_write_dev": _rel_dev(sharded.write_bytes,
                                      scalar.write_bytes),
    }


def test_exact_engine_tiers(run_bench):
    _, metrics = run_bench(bench_exact_engine)
    assert metrics["batch_read_dev"] == 0.0
    assert metrics["batch_write_dev"] == 0.0
    assert metrics["sharded_read_dev"] == 0.0
    assert metrics["sharded_write_dev"] == 0.0
    assert metrics["speedup_shortfall_gap"] == 0.0
