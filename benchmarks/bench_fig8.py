"""Fig 8: S1CF as one combined loop nest.

Shape asserted: exactly 2 reads and 1 write per element at every
stable size — "precisely what we observe" in the paper.
"""

import pytest


def test_fig8(run_once):
    result = run_once("fig8")
    for row in result.extras["plain"]:
        n = row[0]
        if n < 512:
            continue  # smallest sizes are noise-dominated by design
        assert row[2] == pytest.approx(2.0, abs=0.25), n
        assert row[4] == pytest.approx(1.0, abs=0.15), n
