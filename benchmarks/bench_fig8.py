"""Fig 8: S1CF as one combined loop nest.

Shape asserted: exactly 2 reads and 1 write per element at every
stable size — "precisely what we observe" in the paper.
"""

from repro.bench import benchmark


@benchmark("fig8", tags=("figure", "fft3d", "resort"))
def bench_fig8(ctx):
    result = ctx.run_experiment("fig8")
    stable = [r for r in result.extras["plain"] if r[0] >= 512]
    return {
        "read_dev": max(abs(row[2] - 2.0) for row in stable),
        "write_dev": max(abs(row[4] - 1.0) for row in stable),
    }


def test_fig8(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig8)
    result = ctx.results["fig8"]
    for row in result.extras["plain"]:
        n = row[0]
        if n < 512:
            continue  # smallest sizes are noise-dominated by design
        assert row[2] == pytest.approx(2.0, abs=0.25), n
        assert row[4] == pytest.approx(1.0, abs=0.15), n
    assert metrics["read_dev"] < 0.25
    assert metrics["write_dev"] < 0.15
