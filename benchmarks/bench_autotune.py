"""Self-tuning execution layer: perf gates and exactness gates.

Two claims (DESIGN.md §6.5), one benchmark each:

* ``autotune-pipeline`` — on GEMM N=256 with the default worker pool,
  enabling the feedback controller (AIMD segment sizing + sorted
  shard spans + worker affinity) must raise end-to-end pipeline
  throughput by at least 1.3x over the static default, with
  byte-identical traffic. The speedup gate only arms on multi-core
  hosts (>= 2 CPUs and a real worker pool); on a single CPU the
  pipeline is producer-bound by construction and the speedup rides
  along as ``info_``.

* ``autotune-sampling-replay`` — the vectorized segment replay of the
  sampling observer must run ``observe`` at least 3x faster than the
  scalar slice-per-sample oracle at period 8, with *bit-identical*
  estimator output (the scalar path stays in the tree exactly to make
  this differential cheap to assert forever).

Both benchmarks always run the static/scalar reference alongside the
tuned path, so every ``info_`` wall in the frozen baseline stays
comparable across machines.
"""

import os
import time

from repro.bench import benchmark
from repro.engine.pipeline import PipelinedExactEngine
from repro.kernels import Gemm
from repro.machine.config import CacheConfig
from repro.measure import format_table
from repro.papi.sampling import SamplingConfig, SamplingObserver
from repro.units import KIB, MIB

CACHE = CacheConfig(capacity_bytes=4 * MIB)
N = 256
REQUIRED_SPEEDUP = 1.3

SAMPLE_N = 64
SAMPLE_CACHE_KIB = 128
SAMPLE_PERIOD = 8
REQUIRED_REPLAY_SPEEDUP = 3.0


def _rel_dev(got: int, ref: int) -> float:
    return abs(got - ref) / ref if ref else float(got != ref)


@benchmark("autotune-pipeline", tags=("engine", "pipeline", "autotune",
                                      "perf"))
def bench_autotune_pipeline(ctx):
    kernel = Gemm(N)

    t0 = time.perf_counter()
    with PipelinedExactEngine(CACHE, autotune=False) as eng:
        static = eng.run_kernel(kernel)
    t_static = time.perf_counter() - t0
    static_stats = eng.last_pipeline_stats

    t0 = time.perf_counter()
    with PipelinedExactEngine(CACHE, autotune=True) as eng:
        tuned = eng.run_kernel(kernel)
    t_tuned = time.perf_counter() - t0
    stats = eng.last_pipeline_stats

    speedup = t_static / t_tuned if t_tuned else 0.0
    # The speedup gate needs real parallelism: with one CPU (or an
    # inline fallback pool) the producer is the bottleneck either way
    # and the controller can only tie. Keep the gate disarmed there so
    # the frozen baseline stays portable; CI runs multi-core.
    gate_armed = ((os.cpu_count() or 1) >= 2
                  and stats["mode"] == "pool"
                  and stats["n_workers"] >= 2)
    cpus = stats.get("worker_cpus")
    ctx.log(format_table(
        ["path", "seconds", "segment rows", "read bytes", "write bytes"],
        [["static default", round(t_static, 3),
          static_stats["segment_rows"], static.read_bytes,
          static.write_bytes],
         ["autotuned", round(t_tuned, 3),
          stats.get("final_segment_rows", stats["segment_rows"]),
          tuned.read_bytes, tuned.write_bytes]],
        title=f"[autotune] GEMM N={N} ({stats['rows']:,} accesses), "
              f"speedup {speedup:.2f}x "
              f"({'gated' if gate_armed else 'info-only'}), "
              f"occupancy {stats.get('mean_ring_occupancy', 0.0):.2f}, "
              f"workers {'pinned' if cpus else 'unpinned'}"))
    return {
        "rows_macc": stats["rows"] / 1e6,
        # One-sided gate: 0 while autotuning clears the required 1.3x
        # over the static default (multi-core only; see above).
        "autotune_speedup_shortfall_gap": (
            max(0.0, (REQUIRED_SPEEDUP - speedup) / REQUIRED_SPEEDUP)
            if gate_armed else 0.0),
        # Exactness: the controller must not move a byte.
        "autotune_read_dev": _rel_dev(tuned.read_bytes,
                                      static.read_bytes),
        "autotune_write_dev": _rel_dev(tuned.write_bytes,
                                       static.write_bytes),
        # Observability, never gated (machine-dependent).
        "info_speedup": speedup,
        "info_static_wall_s": t_static,
        "info_tuned_wall_s": t_tuned,
        "info_final_segment_rows": float(
            stats.get("final_segment_rows", stats["segment_rows"])),
        "info_mean_ring_occupancy": stats.get(
            "mean_ring_occupancy", 0.0),
        "info_tuning_decisions": float(
            len(stats.get("tuning_trace", []))),
        "info_workers_pinned": 1.0 if cpus else 0.0,
    }


@benchmark("autotune-sampling-replay", tags=("papi", "sampling",
                                             "autotune", "perf"))
def bench_autotune_sampling(ctx):
    kernel = Gemm(SAMPLE_N)
    cache = CacheConfig(capacity_bytes=SAMPLE_CACHE_KIB * KIB)

    results = {}
    for label, vectorized in (("scalar", False), ("vectorized", True)):
        observer = SamplingObserver(
            cache, kernel.streams(),
            SamplingConfig(period=SAMPLE_PERIOD, seed=ctx.seed),
            vectorized=vectorized)
        t0 = time.perf_counter()
        observer.observe_kernel(kernel)
        results[label] = (observer, time.perf_counter() - t0)

    scalar, t_scalar = results["scalar"]
    vector, t_vector = results["vectorized"]
    speedup = t_scalar / t_vector if t_vector else 0.0
    s_est = scalar.estimated_traffic()
    v_est = vector.estimated_traffic()
    ctx.log(format_table(
        ["replay", "seconds", "samples", "slices", "est read B",
         "est write B"],
        [["scalar", round(t_scalar, 3), scalar.n_samples,
          scalar.slices, round(s_est.read_bytes), round(s_est.write_bytes)],
         ["vectorized", round(t_vector, 3), vector.n_samples,
          vector.slices, round(v_est.read_bytes),
          round(v_est.write_bytes)]],
        title=f"[autotune] sampling GEMM N={SAMPLE_N}, "
              f"{SAMPLE_CACHE_KIB} KiB cache, period {SAMPLE_PERIOD}: "
              f"replay speedup {speedup:.2f}x"))
    return {
        # One-sided gate: 0 while the vectorized replay clears 3x.
        "replay_speedup_shortfall_gap": max(
            0.0, (REQUIRED_REPLAY_SPEEDUP - speedup)
            / REQUIRED_REPLAY_SPEEDUP),
        # Bit-identical estimators: any deviation regresses.
        "replay_read_dev": _rel_dev(v_est.read_bytes, s_est.read_bytes),
        "replay_write_dev": _rel_dev(v_est.write_bytes,
                                     s_est.write_bytes),
        "replay_sample_dev": _rel_dev(vector.n_samples,
                                      scalar.n_samples),
        "sample_fraction": (scalar.n_samples
                            / scalar.accesses_observed),
        # Observability, never gated.
        "info_speedup": speedup,
        "info_scalar_wall_s": t_scalar,
        "info_vectorized_wall_s": t_vector,
        "info_vectorized_slices": float(vector.slices),
    }


def test_autotune_pipeline_exact(run_bench):
    _, metrics = run_bench(bench_autotune_pipeline)
    assert metrics["autotune_read_dev"] == 0.0
    assert metrics["autotune_write_dev"] == 0.0
    assert metrics["autotune_speedup_shortfall_gap"] == 0.0


def test_autotune_sampling_bit_identical(run_bench):
    _, metrics = run_bench(bench_autotune_sampling)
    assert metrics["replay_read_dev"] == 0.0
    assert metrics["replay_write_dev"] == 0.0
    assert metrics["replay_sample_dev"] == 0.0
    assert metrics["replay_speedup_shortfall_gap"] == 0.0
