"""Table I: architectures and performance events."""

from repro.bench import benchmark


@benchmark("table1", tags=("table", "events"))
def bench_table1(ctx):
    result = ctx.run_experiment("table1")
    return {
        "summit_events": len(result.extras["summit_events"]),
        "tellico_events": len(result.extras["tellico_events"]),
        "summit_uncore": int(result.extras["summit_uncore_available"]),
        "tellico_uncore": int(result.extras["tellico_uncore_available"]),
    }


def test_table1(run_bench):
    ctx, metrics = run_bench(bench_table1)
    result = ctx.results["table1"]
    assert len(result.extras["summit_events"]) == 32
    assert len(result.extras["tellico_events"]) == 32
    assert not result.extras["summit_uncore_available"]
    assert result.extras["tellico_uncore_available"]
    assert metrics["summit_events"] == 32
    assert metrics["tellico_uncore"] == 1
