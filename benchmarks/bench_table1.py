"""Table I: architectures and performance events."""


def test_table1(run_once):
    result = run_once("table1")
    assert len(result.extras["summit_events"]) == 32
    assert len(result.extras["tellico_events"]) == 32
    assert not result.extras["summit_uncore_available"]
    assert result.extras["tellico_uncore_available"]
