"""Fig 12: multi-component profile of one QMCPACK rank.

Shape asserted: the three stages (VMC no-drift, VMC drift, DMC) are
distinguishable — rising GPU power plateaus, growing traffic, and
walker-exchange network activity exclusive to DMC — and the underlying
physics is sound (energies near the exact ground state).
"""

import pytest


def test_fig12(run_once):
    result = run_once("fig12", n_nodes=2)
    totals = result.extras["phase_totals"]
    power = {name: agg["gpu_energy_j"] / agg["seconds"]
             for name, agg in totals.items()}
    assert power["vmc-nodrift"] < power["vmc-drift"] < power["dmc"]
    # DMC is the only phase with walker-exchange network traffic.
    assert totals["dmc"]["net_recv_bytes"] > 0
    assert totals["vmc-nodrift"]["net_recv_bytes"] == 0
    assert totals["vmc-drift"]["net_recv_bytes"] == 0
    # Physics: all three stages sample near the exact energy.
    exact = result.extras["exact_energy"]
    for phase, energy in result.extras["energies"].items():
        assert energy == pytest.approx(exact, abs=0.2), phase
