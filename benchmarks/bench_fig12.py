"""Fig 12: multi-component profile of one QMCPACK rank.

Shape asserted: the three stages (VMC no-drift, VMC drift, DMC) are
distinguishable — rising GPU power plateaus, growing traffic, and
walker-exchange network activity exclusive to DMC — and the underlying
physics is sound (energies near the exact ground state).
"""

from repro.bench import benchmark


@benchmark("fig12", tags=("figure", "qmc", "gpu", "multi-component"))
def bench_fig12(ctx):
    result = ctx.run_experiment("fig12", n_nodes=2)
    totals = result.extras["phase_totals"]
    power = {name: agg["gpu_energy_j"] / agg["seconds"]
             for name, agg in totals.items()}
    exact = result.extras["exact_energy"]
    energies = result.extras["energies"]
    return {
        "power_vmc_nodrift_w": power["vmc-nodrift"],
        "power_vmc_drift_w": power["vmc-drift"],
        "power_dmc_w": power["dmc"],
        "dmc_net_recv_mb": totals["dmc"]["net_recv_bytes"] / 1e6,
        "vmc_net_recv_mb": (totals["vmc-nodrift"]["net_recv_bytes"]
                            + totals["vmc-drift"]["net_recv_bytes"])
        / 1e6,
        "energy_err": max(abs(energy - exact)
                          for energy in energies.values()),
    }


def test_fig12(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig12)
    result = ctx.results["fig12"]
    assert (metrics["power_vmc_nodrift_w"]
            < metrics["power_vmc_drift_w"]
            < metrics["power_dmc_w"])
    # DMC is the only phase with walker-exchange network traffic.
    assert metrics["dmc_net_recv_mb"] > 0
    assert metrics["vmc_net_recv_mb"] == 0
    # Physics: all three stages sample near the exact energy.
    exact = result.extras["exact_energy"]
    for phase, energy in result.extras["energies"].items():
        assert energy == pytest.approx(exact, abs=0.2), phase
    assert metrics["energy_err"] < 0.2
