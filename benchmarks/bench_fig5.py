"""Fig 5: batched capped GEMV (PCP on Summit vs uncore on Tellico).

Shape asserted: reads track the expectation through the square→capped
transition at M = 1280; writes exceed expectation and settle only past
M ≈ 1e4; both panels behave the same (not a PCP artifact).
"""

import pytest


def test_fig5(run_once):
    result = run_once("fig5")
    for panel in ("summit", "tellico"):
        rows = result.extras[panel]
        by_m = {r[0]: r for r in rows}
        # Reads match throughout.
        for m, row in by_m.items():
            assert row[8] == pytest.approx(1.0, abs=0.35), (panel, m)
        # Write convergence only past ~1e4.
        small = [m for m in by_m if m <= 1280]
        large = [m for m in by_m if m >= 65536]
        assert all(by_m[m][9] > 1.5 for m in small)
        assert all(by_m[m][9] < 1.25 for m in large)
        # Regime transition at exactly 1280.
        assert by_m[1280][2] == "square"
        assert min(m for m in by_m if m > 1280) and \
            by_m[min(m for m in by_m if m > 1280)][2] == "capped"
