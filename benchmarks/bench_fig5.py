"""Fig 5: batched capped GEMV (PCP on Summit vs uncore on Tellico).

Shape asserted: reads track the expectation through the square→capped
transition at M = 1280; writes exceed expectation and settle only past
M ≈ 1e4; both panels behave the same (not a PCP artifact).
"""

from repro.bench import benchmark


@benchmark("fig5", tags=("figure", "gemv", "pcp", "uncore"))
def bench_fig5(ctx):
    result = ctx.run_experiment("fig5")
    metrics = {}
    for panel in ("summit", "tellico"):
        by_m = {r[0]: r for r in result.extras[panel]}
        small = [m for m in by_m if m <= 1280]
        large = [m for m in by_m if m >= 65536]
        metrics[f"{panel}_read_dev"] = max(abs(row[8] - 1.0)
                                           for row in by_m.values())
        metrics[f"{panel}_write_small_min"] = min(by_m[m][9]
                                                  for m in small)
        metrics[f"{panel}_write_tail_excess"] = max(by_m[m][9] - 1.0
                                                    for m in large)
    return metrics


def test_fig5(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig5)
    result = ctx.results["fig5"]
    for panel in ("summit", "tellico"):
        rows = result.extras[panel]
        by_m = {r[0]: r for r in rows}
        # Reads match throughout.
        for m, row in by_m.items():
            assert row[8] == pytest.approx(1.0, abs=0.35), (panel, m)
        assert metrics[f"{panel}_read_dev"] < 0.35
        # Write convergence only past ~1e4.
        assert metrics[f"{panel}_write_small_min"] > 1.5
        assert metrics[f"{panel}_write_tail_excess"] < 0.25
        # Regime transition at exactly 1280.
        assert by_m[1280][2] == "square"
        first_above = min(m for m in by_m if m > 1280)
        assert by_m[first_above][2] == "capped"
