"""Fig 11: multi-component profile of one GPU 3D-FFT rank.

Shape asserted: every phase of the pipeline is uniquely identifiable
from its (memory R/W, GPU power, network) signature — the paper's
headline multi-component demonstration.
"""

import pytest


def test_fig11(run_once):
    result = run_once("fig11", n=2016, slices_per_phase=3)
    totals = result.extras["phase_totals"]
    # 1st/3rd resorts: ~2 reads per write.
    for phase in ("s1cf", "s1pf"):
        ratio = totals[phase]["read_bytes"] / totals[phase]["write_bytes"]
        assert ratio == pytest.approx(2.0, abs=0.2), phase
    # 2nd/4th resorts: ~1:1 and faster than the 1st/3rd.
    for phase in ("s2cf", "s2pf"):
        ratio = totals[phase]["read_bytes"] / totals[phase]["write_bytes"]
        assert ratio == pytest.approx(1.0, abs=0.2), phase
    s1_bw = (totals["s1cf"]["read_bytes"] + totals["s1cf"]["write_bytes"]) \
        / totals["s1cf"]["seconds"]
    s2_bw = (totals["s2cf"]["read_bytes"] + totals["s2cf"]["write_bytes"]) \
        / totals["s2cf"]["seconds"]
    assert s2_bw > s1_bw  # "higher bandwidth due to better locality"
    # Network jumps only in the two All2Alls.
    for name, agg in totals.items():
        if name.startswith("all2all"):
            assert agg["net_recv_bytes"] > 0, name
        else:
            assert agg["net_recv_bytes"] == 0, name
    # GPU power spikes sit in the FFT phases: the kernel sub-step hits
    # near-peak power, while resort phases idle at the baseline.
    timeline = result.extras["timeline"]
    fft_peak = max(s.gpu_power_w for s in timeline.phase("fft-y"))
    resort_peak = max(s.gpu_power_w for s in timeline.phase("s2cf"))
    assert fft_peak > 250
    assert resort_peak < 50
    # ... and the spike sits between a read burst and a write burst.
    fft_samples = timeline.phase("fft-z")[:3]
    h2d, kernel, d2h = fft_samples
    assert h2d.mem_read_rate > 10 * h2d.mem_write_rate
    assert kernel.gpu_power_w > 250
    assert d2h.mem_write_rate > 10 * d2h.mem_read_rate
