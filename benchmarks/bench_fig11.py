"""Fig 11: multi-component profile of one GPU 3D-FFT rank.

Shape asserted: every phase of the pipeline is uniquely identifiable
from its (memory R/W, GPU power, network) signature — the paper's
headline multi-component demonstration.
"""

from repro.bench import benchmark


@benchmark("fig11", tags=("figure", "fft3d", "gpu", "multi-component"))
def bench_fig11(ctx):
    result = ctx.run_experiment("fig11", n=2016, slices_per_phase=3)
    totals = result.extras["phase_totals"]

    def rw_ratio(phase):
        return totals[phase]["read_bytes"] / totals[phase]["write_bytes"]

    def bandwidth(phase):
        agg = totals[phase]
        return (agg["read_bytes"] + agg["write_bytes"]) / agg["seconds"]

    timeline = result.extras["timeline"]
    return {
        "s1_ratio_dev": max(abs(rw_ratio(p) - 2.0)
                            for p in ("s1cf", "s1pf")),
        "s2_ratio_dev": max(abs(rw_ratio(p) - 1.0)
                            for p in ("s2cf", "s2pf")),
        "locality_bw_gain": bandwidth("s2cf") / bandwidth("s1cf"),
        "fft_peak_w": max(s.gpu_power_w for s in timeline.phase("fft-y")),
        "resort_peak_w": max(s.gpu_power_w
                             for s in timeline.phase("s2cf")),
    }


def test_fig11(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig11)
    result = ctx.results["fig11"]
    totals = result.extras["phase_totals"]
    # 1st/3rd resorts: ~2 reads per write.
    for phase in ("s1cf", "s1pf"):
        ratio = totals[phase]["read_bytes"] / totals[phase]["write_bytes"]
        assert ratio == pytest.approx(2.0, abs=0.2), phase
    # 2nd/4th resorts: ~1:1 and faster than the 1st/3rd.
    for phase in ("s2cf", "s2pf"):
        ratio = totals[phase]["read_bytes"] / totals[phase]["write_bytes"]
        assert ratio == pytest.approx(1.0, abs=0.2), phase
    assert metrics["s1_ratio_dev"] < 0.2
    assert metrics["s2_ratio_dev"] < 0.2
    # "higher bandwidth due to better locality"
    assert metrics["locality_bw_gain"] > 1.0
    # Network jumps only in the two All2Alls.
    for name, agg in totals.items():
        if name.startswith("all2all"):
            assert agg["net_recv_bytes"] > 0, name
        else:
            assert agg["net_recv_bytes"] == 0, name
    # GPU power spikes sit in the FFT phases: the kernel sub-step hits
    # near-peak power, while resort phases idle at the baseline.
    assert metrics["fft_peak_w"] > 250
    assert metrics["resort_peak_w"] < 50
    # ... and the spike sits between a read burst and a write burst.
    timeline = result.extras["timeline"]
    fft_samples = timeline.phase("fft-z")[:3]
    h2d, kernel, d2h = fft_samples
    assert h2d.mem_read_rate > 10 * h2d.mem_write_rate
    assert kernel.gpu_power_w > 250
    assert d2h.mem_write_rate > 10 * d2h.mem_read_rate
