"""Fig 9: S2CF — the amortised stride.

Shape asserted: 1 read : 1 write without flags (stores bypass), 2 : 1
with -fprefetch-loop-arrays, and higher bandwidth than S1CF loop
nest 2 thanks to locality.
"""

from repro.bench import benchmark

SIZES = (768, 1024, 1280)


@benchmark("fig9", tags=("figure", "fft3d", "resort"))
def bench_fig9(ctx):
    result = ctx.run_experiment("fig9")
    plain = {r[0]: r for r in result.extras["plain"]}
    flagged = {r[0]: r for r in result.extras["prefetch"]}
    return {
        "plain_read_dev": max(abs(plain[n][2] - 1.0) for n in SIZES),
        "plain_write_dev": max(abs(plain[n][4] - 1.0) for n in SIZES),
        "flagged_read_dev": max(abs(flagged[n][2] - 2.0)
                                for n in SIZES),
    }


def test_fig9(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig9)
    result = ctx.results["fig9"]
    plain = {r[0]: r for r in result.extras["plain"]}
    flagged = {r[0]: r for r in result.extras["prefetch"]}
    for n in SIZES:
        assert plain[n][2] == pytest.approx(1.0, abs=0.15), n
        assert plain[n][4] == pytest.approx(1.0, abs=0.15), n
        assert flagged[n][2] == pytest.approx(2.0, abs=0.25), n
    assert metrics["plain_read_dev"] < 0.15
    assert metrics["flagged_read_dev"] < 0.25
