"""Fig 9: S2CF — the amortised stride.

Shape asserted: 1 read : 1 write without flags (stores bypass), 2 : 1
with -fprefetch-loop-arrays, and higher bandwidth than S1CF loop
nest 2 thanks to locality.
"""

import pytest


def test_fig9(run_once):
    result = run_once("fig9")
    plain = {r[0]: r for r in result.extras["plain"]}
    flagged = {r[0]: r for r in result.extras["prefetch"]}
    for n in (768, 1024, 1280):
        assert plain[n][2] == pytest.approx(1.0, abs=0.15), n
        assert plain[n][4] == pytest.approx(1.0, abs=0.15), n
        assert flagged[n][2] == pytest.approx(2.0, abs=0.25), n
