"""Disk trace-store tiers: cold write, warm mmap load, streamed sim.

The on-disk columnar store only earns its keep if (a) a warm mmap
load beats regenerating the trace by a wide margin, (b) streaming the
stored columns through the exact engine reproduces the in-RAM batch
counters byte-for-byte, and (c) neither the cold write nor the
streamed simulation falls below a conservative throughput floor.
Raw timings drift with machine load, so only one-sided ``_gap``
shortfalls and exactness ``_dev`` metrics are gated.
"""

import shutil
import tempfile
import time

from repro.bench import benchmark
from repro.engine.exact import ExactEngine, ShardedExactEngine
from repro.engine.tracestore import TraceStore
from repro.kernels import Gemm
from repro.machine.config import CacheConfig
from repro.measure import format_table
from repro.units import MIB

#: The cross-validation configuration (tests/test_engine_crossval.py).
CACHE = CacheConfig(capacity_bytes=4 * MIB)
N = 128

#: Conservative floors in M accesses/s — the dev box does ~7 Macc/s
#: cold write (generation dominates), ~25 Macc/s full-CRC warm load
#: and ~40 Macc/s streamed simulation.
COLD_WRITE_FLOOR = 1.5
WARM_LOAD_FLOOR = 8.0
STREAM_SIM_FLOOR = 8.0


def _rel_dev(got: int, ref: int) -> float:
    return abs(got - ref) / ref if ref else float(got != ref)


def _gap(required: float, got: float) -> float:
    """One-sided shortfall: 0 while ``got`` clears ``required``."""
    return max(0.0, (required - got) / required)


@benchmark("trace-store", tags=("engine", "store", "perf"))
def bench_trace_store(ctx):
    kernel = Gemm(N)
    streams = kernel.streams()
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = TraceStore(root, verify="full")

        trace = kernel.exact_trace()
        batch = ExactEngine(CACHE).run_nest(streams, trace)
        macc = len(trace) / 1e6

        t0 = time.perf_counter()
        store.put(kernel, kernel.exact_trace_blocks())
        t_write = time.perf_counter() - t0

        t_load = float("inf")
        for _ in range(3):  # best-of-3: page cache is warm after one
            t0 = time.perf_counter()
            entry = store.get(kernel)
            loaded = entry.load()
            t_load = min(t_load, time.perf_counter() - t0)
        roundtrip_dev = float(not (
            (loaded.addr == trace.addr).all()
            and (loaded.size == trace.size).all()
            and (loaded.stream_id == trace.stream_id).all()
            and (loaded.is_write == trace.is_write).all()
            and loaded.streams == trace.streams))
        del loaded

        t_stream = float("inf")
        for _ in range(3):
            entry = store.get(kernel, verify="meta")
            t0 = time.perf_counter()
            streamed = ExactEngine(CACHE).run_nest(streams, entry)
            t_stream = min(t_stream, time.perf_counter() - t0)
            entry.close()

        entry = store.get(kernel, verify="meta")
        t0 = time.perf_counter()
        sharded = ShardedExactEngine(CACHE, n_shards=2).run_nest(
            streams, entry)
        t_sharded = time.perf_counter() - t0
        entry.close()

        w_th, l_th, s_th = macc / t_write, macc / t_load, macc / t_stream
        ctx.log(format_table(
            ["tier", "seconds", "Macc/s", "read bytes", "write bytes"],
            [["cold write (gen + persist)", round(t_write, 3),
              round(w_th, 1), "-", "-"],
             ["warm load (full CRC + mmap)", round(t_load, 3),
              round(l_th, 1), "-", "-"],
             ["streamed simulation", round(t_stream, 3),
              round(s_th, 1), streamed.read_bytes, streamed.write_bytes],
             ["sharded-from-disk x2", round(t_sharded, 3),
              round(macc / t_sharded, 1), sharded.read_bytes,
              sharded.write_bytes]],
            title=f"[store] GEMM N={N} ({len(trace):,} accesses, "
                  f"{store.total_bytes() / 1e6:.1f} MB on disk)"))
        return {
            "trace_macc": macc,
            "cold_write_gap": _gap(COLD_WRITE_FLOOR, w_th),
            "warm_load_gap": _gap(WARM_LOAD_FLOOR, l_th),
            "stream_sim_gap": _gap(STREAM_SIM_FLOOR, s_th),
            # Exactness: a stored trace must round-trip byte-identical
            # and simulate to the in-RAM batch counters exactly.
            "roundtrip_dev": roundtrip_dev,
            "stream_read_dev": _rel_dev(streamed.read_bytes,
                                        batch.read_bytes),
            "stream_write_dev": _rel_dev(streamed.write_bytes,
                                         batch.write_bytes),
            "sharded_read_dev": _rel_dev(sharded.read_bytes,
                                         batch.read_bytes),
            "sharded_write_dev": _rel_dev(sharded.write_bytes,
                                          batch.write_bytes),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_trace_store_tiers(run_bench):
    _, metrics = run_bench(bench_trace_store)
    assert metrics["roundtrip_dev"] == 0.0
    assert metrics["stream_read_dev"] == 0.0
    assert metrics["stream_write_dev"] == 0.0
    assert metrics["sharded_read_dev"] == 0.0
    assert metrics["sharded_write_dev"] == 0.0
    assert metrics["cold_write_gap"] == 0.0
    assert metrics["warm_load_gap"] == 0.0
    assert metrics["stream_sim_gap"] == 0.0
