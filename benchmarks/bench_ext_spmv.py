"""Extension: irregular-gather amplification in CSR SpMV.

Asserted shape: per-non-zero read cost sits near the streaming floor
(value + index + amortised x) while the source vector fits the 5 MB
per-core L3 share, and jumps by roughly one 64 B granule per non-zero
once it does not — the same boundary methodology as Figs 3/5, applied
to an irregular access pattern.
"""

import pytest


def test_ext_spmv(run_once):
    result = run_once("ext-spmv")
    per_nnz = result.extras["per_nnz"]
    boundary = result.extras["boundary"]
    cached = [v for n, v in per_nnz.items() if n < boundary]
    amplified = [v for n, v in per_nnz.items() if n > boundary]
    assert cached and amplified
    for v in cached:
        assert v == pytest.approx(14.0, abs=2.0)
    for v in amplified:
        assert v == pytest.approx(14.0 + 64.0, abs=4.0)
