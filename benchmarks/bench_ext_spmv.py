"""Extension: irregular-gather amplification in CSR SpMV.

Asserted shape: per-non-zero read cost sits near the streaming floor
(value + index + amortised x) while the source vector fits the 5 MB
per-core L3 share, and jumps by roughly one 64 B granule per non-zero
once it does not — the same boundary methodology as Figs 3/5, applied
to an irregular access pattern.
"""

from repro.bench import benchmark


@benchmark("ext-spmv", tags=("extension", "sparse"))
def bench_ext_spmv(ctx):
    result = ctx.run_experiment("ext-spmv")
    per_nnz = result.extras["per_nnz"]
    boundary = result.extras["boundary"]
    cached = [v for n, v in per_nnz.items() if n < boundary]
    amplified = [v for n, v in per_nnz.items() if n > boundary]
    return {
        "boundary": boundary,
        "cached_sizes": len(cached),
        "amplified_sizes": len(amplified),
        "cached_dev": max(abs(v - 14.0) for v in cached),
        "amplified_dev": max(abs(v - 78.0) for v in amplified),
    }


def test_ext_spmv(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_ext_spmv)
    result = ctx.results["ext-spmv"]
    per_nnz = result.extras["per_nnz"]
    boundary = result.extras["boundary"]
    cached = [v for n, v in per_nnz.items() if n < boundary]
    amplified = [v for n, v in per_nnz.items() if n > boundary]
    assert cached and amplified
    for v in cached:
        assert v == pytest.approx(14.0, abs=2.0)
    for v in amplified:
        assert v == pytest.approx(14.0 + 64.0, abs=4.0)
    assert metrics["cached_dev"] < 2.0
    assert metrics["amplified_dev"] < 4.0
