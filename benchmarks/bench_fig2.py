"""Fig 2: single-threaded GEMM with one repetition (PCP vs uncore).

Shape asserted: small problems are noise-dominated, large cached
problems drift above the expectation, on BOTH measurement paths — and
the divergence band lands at the paper's N in [467, 809].
"""

from repro.bench import benchmark


@benchmark("fig2", tags=("figure", "gemm", "pcp"))
def bench_fig2(ctx):
    result = ctx.run_experiment("fig2")
    lo, hi = result.extras["band"]
    metrics = {"band_lo": lo, "band_hi": hi}
    for machine in ("summit", "tellico"):
        by_n = {r[0]: r for r in result.extras[machine]}
        smallest = min(by_n)
        largest = max(by_n)
        metrics[f"{machine}_noise_floor"] = abs(by_n[smallest][7] - 1.0)
        metrics[f"{machine}_large_n_ratio"] = by_n[largest][7]
    return metrics


def test_fig2(run_bench):
    import pytest

    ctx, metrics = run_bench(bench_fig2)
    result = ctx.results["fig2"]
    lo, hi = result.extras["band"]
    assert lo == pytest.approx(467, abs=1)
    assert hi == pytest.approx(809, abs=1)
    for rows in (result.extras["summit"], result.extras["tellico"]):
        by_n = {r[0]: r for r in rows}
        smallest = min(by_n)
        largest = max(by_n)
        # Noise floor at the small end.
        assert abs(by_n[smallest][7] - 1.0) > 0.5
        # Divergence at the large end (single thread, still cached or
        # beyond — either way measured exceeds the expectation).
        assert by_n[largest][7] > 1.5
    assert metrics["summit_noise_floor"] > 0.5
    assert metrics["tellico_large_n_ratio"] > 1.5
