"""Fig 2: single-threaded GEMM with one repetition (PCP vs uncore).

Shape asserted: small problems are noise-dominated, large cached
problems drift above the expectation, on BOTH measurement paths — and
the divergence band lands at the paper's N in [467, 809].
"""

import pytest


def test_fig2(run_once):
    result = run_once("fig2")
    lo, hi = result.extras["band"]
    assert lo == pytest.approx(467, abs=1)
    assert hi == pytest.approx(809, abs=1)
    for rows in (result.extras["summit"], result.extras["tellico"]):
        by_n = {r[0]: r for r in rows}
        smallest = min(by_n)
        largest = max(by_n)
        # Noise floor at the small end.
        assert abs(by_n[smallest][7] - 1.0) > 0.5
        # Divergence at the large end (single thread, still cached or
        # beyond — either way measured exceeds the expectation).
        assert by_n[largest][7] > 1.5
