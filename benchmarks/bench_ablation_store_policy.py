"""Ablation: the cache-bypassing store policy.

The paper's Fig 6a observation — ONE read per element where two were
expected — is only explained if stride-free dense stores bypass the
cache. This ablation disables the bypass (every store write-allocates,
as a naive model would assume) and shows the resulting prediction
contradicts the observation, while the policy model matches it; it
also confirms the ablated model *coincides* with the real behaviour
when ``-fprefetch-loop-arrays`` re-enables the read (Fig 6b), which is
exactly why that flag is the natural experimental control.
"""

from repro.bench import benchmark
from repro.engine.analytic import CacheContext
from repro.fft3d import LocalBlock, S1CFLoopNest1, S2CF
from repro.machine.prefetch import SoftwarePrefetch
from repro.measure import format_table
from repro.units import MIB

CTX = CacheContext(capacity_bytes=5 * MIB)
#: dcbtst forces write-allocation — reusing it as the "no bypass
#: anywhere" ablation knob keeps the ablation inside the same law.
NO_BYPASS = SoftwarePrefetch(dcbt=False, dcbtst=True)
BLOCK = LocalBlock(planes=512, rows=256, cols=1024)

#: The paper's measurements (reads per element copied).
OBSERVED = {"s1cf-ln1": 1.0, "s2cf": 1.0}
OBSERVED_WITH_FLAG = {"s1cf-ln1": 2.0, "s2cf": 2.0}


@benchmark("ablation-store-policy", tags=("ablation", "cache"))
def bench_ablation_store_policy(ctx):
    rows = []
    metrics = {}
    for cls in (S1CFLoopNest1, S2CF):
        kernel = cls(BLOCK)
        with_policy = kernel.traffic(CTX).read_bytes / kernel.nbytes
        ablated = kernel.traffic(CTX, NO_BYPASS).read_bytes / kernel.nbytes
        rows.append([kernel.routine, round(with_policy, 3),
                     round(ablated, 3), OBSERVED[kernel.routine],
                     OBSERVED_WITH_FLAG[kernel.routine]])
        metrics[f"{kernel.routine}_policy_read_dev"] = abs(
            with_policy - OBSERVED[kernel.routine])
        metrics[f"{kernel.routine}_no_bypass_reads"] = ablated
    ctx.log(format_table(
        ["kernel", "reads/elem (policy model)", "reads/elem (no bypass)",
         "paper observed", "paper observed w/ flag"],
        rows, title="[ablation] store-bypass policy vs naive "
                    "write-allocate"))
    return metrics


def test_ablation_store_policy(run_bench):
    import pytest

    _, metrics = run_bench(bench_ablation_store_policy)
    for routine, observed in OBSERVED.items():
        with_flag = OBSERVED_WITH_FLAG[routine]
        # The policy model matches the paper's observation...
        assert metrics[f"{routine}_policy_read_dev"] < 0.05
        # ...the ablated model contradicts it by a full read per element
        assert metrics[f"{routine}_no_bypass_reads"] == pytest.approx(
            observed + 1.0, abs=0.05)
        # ...and coincides with the flag-enabled measurement (Fig 6b/9b).
        assert metrics[f"{routine}_no_bypass_reads"] == pytest.approx(
            with_flag, abs=0.05)
